#include <sim/trace.hpp>

#include <stdexcept>

namespace movr::sim {

TraceWriter::TraceWriter(const std::string& path,
                         const std::vector<std::string>& columns)
    : out_{path}, columns_{columns.size()} {
  if (!out_) {
    throw std::runtime_error{"TraceWriter: cannot open " + path};
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << columns[i] << (i + 1 < columns.size() ? "," : "\n");
  }
}

void TraceWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument{"TraceWriter: column count mismatch"};
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

void TraceWriter::row(const std::string& label,
                      const std::vector<double>& values) {
  if (values.size() + 1 != columns_) {
    throw std::invalid_argument{"TraceWriter: column count mismatch"};
  }
  out_ << label << ',';
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

}  // namespace movr::sim
