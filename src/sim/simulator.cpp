#include <sim/simulator.hpp>

#include <stdexcept>
#include <utility>

namespace movr::sim {

EventQueue::EventId Simulator::after(Duration delay,
                                     EventQueue::Handler handler) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument{"Simulator::after: negative delay"};
  }
  return queue_.schedule(now_ + delay, std::move(handler));
}

EventQueue::EventId Simulator::at(TimePoint when,
                                  EventQueue::Handler handler) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::at: time in the past"};
  }
  return queue_.schedule(when, std::move(handler));
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  if (valve_.max_events != 0 && events_executed_ >= valve_.max_events) {
    throw std::runtime_error{
        "Simulator: safety valve tripped (max_events exceeded; a protocol "
        "is scheduling events without making progress)"};
  }
  if (valve_.max_time != Duration::zero() &&
      queue_.next_time() > valve_.max_time) {
    throw std::runtime_error{
        "Simulator: safety valve tripped (max_time exceeded; the event "
        "horizon ran past the configured simulated-time bound)"};
  }
  // Advance the clock BEFORE dispatching, so the handler observes its own
  // scheduled time through now().
  now_ = queue_.next_time();
  queue_.run_next();
  ++events_executed_;
  return true;
}

}  // namespace movr::sim
