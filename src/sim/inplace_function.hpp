// A fixed-buffer std::function replacement for the event queue's handlers.
//
// Every event the simulator schedules used to pay one heap allocation for
// its std::function capture (the transport's per-MPDU lambdas carry a
// Packet plus coin parameters — well past the small-buffer optimisation).
// At 90 Hz with several events per tick that allocation churn IS the
// steady-state cost of the tick path, so the handler type stores its
// callable inline: construction from any callable that fits is
// allocation-free by construction, and callables that do not fit fail to
// compile (static_assert) instead of silently spilling to the heap.
//
// Semantics are the slice of std::function the event queue needs: copyable
// (the heap's top entry is copied out before popping), movable, callable,
// empty-testable. Copyability of the stored callable is required — event
// handlers capture PODs, pointers and std::function callbacks, all of
// which copy.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace movr::sim {

template <typename Signature, std::size_t Capacity = 120>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable too large for InplaceFunction buffer — shrink "
                  "the capture or raise Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable over-aligned for InplaceFunction buffer");
    static_assert(std::is_copy_constructible_v<Fn>,
                  "InplaceFunction requires a copyable callable");
    ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
    ops_ = &ops_for<Fn>;
  }

  InplaceFunction(const InplaceFunction& other) { copy_from(other); }
  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(const InplaceFunction& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(const std::byte*, Args&&...);
    void (*copy)(std::byte*, const std::byte*);
    void (*move)(std::byte*, std::byte*);
    void (*destroy)(std::byte*);
  };

  template <typename Fn>
  static constexpr Ops ops_for{
      [](const std::byte* buf, Args&&... args) -> R {
        // Handlers are semantically mutable calls (std::function parity):
        // the stored callable may update captured state between firings.
        return (*const_cast<Fn*>(reinterpret_cast<const Fn*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](std::byte* dst, const std::byte* src) {
        ::new (static_cast<void*>(dst)) Fn(*reinterpret_cast<const Fn*>(src));
      },
      [](std::byte* dst, std::byte* src) {
        ::new (static_cast<void*>(dst)) Fn(std::move(*reinterpret_cast<Fn*>(src)));
      },
      [](std::byte* buf) { reinterpret_cast<Fn*>(buf)->~Fn(); },
  };

  void copy_from(const InplaceFunction& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(buffer_, other.buffer_);
    }
    ops_ = other.ops_;
  }
  void move_from(InplaceFunction& other) noexcept {
    const Ops* ops = other.ops_;
    if (ops != nullptr) {
      ops->move(buffer_, other.buffer_);
      ops->destroy(other.buffer_);
    }
    ops_ = ops;
    other.ops_ = nullptr;
  }
  void destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) mutable std::byte buffer_[Capacity];
  const Ops* ops_{nullptr};
};

}  // namespace movr::sim
