#include <sim/rng.hpp>

namespace movr::sim {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : s) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the combined value.
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

std::mt19937_64 RngRegistry::stream(std::string_view name) const {
  return std::mt19937_64{mix(master_seed_, fnv1a(name))};
}

std::mt19937_64 RngRegistry::stream(std::string_view name,
                                    std::uint64_t index) const {
  return std::mt19937_64{mix(mix(master_seed_, fnv1a(name)), index)};
}

}  // namespace movr::sim
