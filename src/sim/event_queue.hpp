// The discrete-event core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion order so runs are deterministic — identical
// seeds replay identical event sequences, which the replay property tests
// assert.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include <sim/inplace_function.hpp>
#include <sim/time.hpp>

namespace movr::sim {

class EventQueue {
 public:
  /// Handlers are stored inline (no heap allocation per event). Captures
  /// must fit the fixed buffer — a compile error here means a lambda grew
  /// past the budget; shrink the capture or box it explicitly.
  using Handler = InplaceFunction<void(), 152>;

  /// Identifies a scheduled event so it can be cancelled.
  using EventId = std::uint64_t;

  /// Schedules `handler` to run at absolute time `when`.
  EventId schedule(TimePoint when, Handler handler);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (the common race: an SNR-recovered event cancelling a timeout).
  void cancel(EventId id);

  bool empty() const;
  std::size_t pending() const { return live_count_; }

  /// Time of the earliest pending event. Precondition: !empty().
  TimePoint next_time() const;

  /// Pops and runs the earliest event; returns its timestamp.
  /// Precondition: !empty().
  TimePoint run_next();

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    Handler handler;

    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<EventId> cancelled_;
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::size_t live_count_{0};

  bool is_cancelled(EventId id) const;
};

}  // namespace movr::sim
