// CSV trace sink for experiment output.
//
// Every bench prints human-readable tables; for plotting, the same series
// can be dumped as CSV. A TraceWriter owns one file, writes a header once,
// and escapes nothing exotic — columns are numbers and plain labels.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace movr::sim {

class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  TraceWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; the value count must match the header.
  void row(const std::vector<double>& values);

  /// Writes one row with a leading string label column.
  void row(const std::string& label, const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_{0};
};

}  // namespace movr::sim
