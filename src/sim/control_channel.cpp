#include <sim/control_channel.hpp>

#include <algorithm>
#include <utility>

namespace movr::sim {

ControlChannel::ControlChannel(Simulator& simulator, Config config,
                               std::mt19937_64 rng)
    : simulator_{simulator}, config_{config}, rng_{std::move(rng)} {}

void ControlChannel::attach(const std::string& endpoint_name,
                            Endpoint endpoint) {
  endpoints_[endpoint_name] = std::move(endpoint);
}

void ControlChannel::send(const std::string& to, ControlMessage message) {
  send(to, std::move(message), SendOutcome{});
}

void ControlChannel::send(const std::string& to, ControlMessage message,
                          SendOutcome outcome) {
  ++stats_.sent;
  if (message.tag == 0) {
    message.tag = next_auto_tag_++;
  }
  auto transfer = std::make_shared<Transfer>();
  transfer->to = to;
  transfer->message = std::move(message);
  transfer->outcome = std::move(outcome);
  deliver(transfer);
}

void ControlChannel::apply_fault(double loss_delta,
                                 Duration extra_latency_delta) {
  fault_loss_ += loss_delta;
  fault_extra_latency_ += extra_latency_delta;
  if (fault_loss_ < 0.0) {
    fault_loss_ = 0.0;
  }
  if (fault_extra_latency_ < Duration::zero()) {
    fault_extra_latency_ = Duration::zero();
  }
}

double ControlChannel::effective_loss() const {
  return std::clamp(config_.loss_probability + fault_loss_, 0.0, 1.0);
}

void ControlChannel::finish(const TransferPtr& transfer, bool delivered) {
  if (transfer->outcome_fired) {
    return;
  }
  transfer->outcome_fired = true;
  if (transfer->outcome) {
    transfer->outcome(delivered);
  }
}

bool ControlChannel::remember_tag(DedupWindow& window, std::uint64_t tag) {
  if (window.seen.count(tag) != 0) {
    return false;  // duplicate
  }
  window.seen.insert(tag);
  window.order.push_back(tag);
  while (window.order.size() > config_.dedup_window) {
    window.seen.erase(window.order.front());
    window.order.pop_front();
  }
  return true;
}

void ControlChannel::deliver(const TransferPtr& transfer) {
  std::uniform_real_distribution<double> coin{0.0, 1.0};
  std::uniform_real_distribution<double> jitter{
      -to_seconds(config_.jitter), to_seconds(config_.jitter)};

  const bool lost = coin(rng_) < effective_loss();
  if (lost) {
    // A "loss" is either the data frame (nothing arrives) or its ack (the
    // data arrived, the sender just doesn't know). Either way the link
    // layer retransmits, so an ack loss produces a duplicate downstream.
    const bool ack_lost = coin(rng_) < config_.ack_loss_fraction;
    if (ack_lost) {
      Duration delay = config_.latency + fault_extra_latency_ +
                       from_seconds(jitter(rng_));
      delay = std::max(delay, Duration::zero());
      simulator_.after(delay, [this, transfer] {
        arrive(transfer);
        finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
      });
    }
    if (transfer->attempt >= config_.max_retries) {
      if (!ack_lost) {
        if (transfer->fate == Transfer::Fate::kPending) {
          transfer->fate = Transfer::Fate::kDropped;
          ++stats_.dropped;
        }
        finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
      }
      // ack_lost: the in-flight arrival above settles the outcome.
      return;
    }
    ++stats_.retransmitted;
    ++transfer->attempt;
    simulator_.after(config_.retry_timeout,
                     [this, transfer] { deliver(transfer); });
    return;
  }

  Duration delay = config_.latency + fault_extra_latency_ +
                   from_seconds(jitter(rng_));
  delay = std::max(delay, Duration::zero());
  simulator_.after(delay, [this, transfer] {
    arrive(transfer);
    finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
  });
}

void ControlChannel::arrive(const TransferPtr& transfer) {
  const auto it = endpoints_.find(transfer->to);
  if (it == endpoints_.end()) {
    if (transfer->fate == Transfer::Fate::kPending) {
      ++stats_.undeliverable;
      transfer->fate = Transfer::Fate::kUndeliverable;
    }
    return;
  }
  // A copy arriving after the sender already gave up (fate kDropped) still
  // reaches the endpoint — at-least-once semantics — but the stats keep the
  // sender-side verdict, so each send counts under exactly one outcome.
  if (transfer->fate == Transfer::Fate::kPending) {
    transfer->fate = Transfer::Fate::kDelivered;
    ++stats_.delivered;
  }
  if (!remember_tag(dedup_[transfer->to], transfer->message.tag)) {
    ++stats_.duplicates;
    return;  // idempotent: the endpoint never sees the duplicate
  }
  it->second(transfer->message);
}

}  // namespace movr::sim
