#include <sim/control_channel.hpp>

#include <utility>

namespace movr::sim {

ControlChannel::ControlChannel(Simulator& simulator, Config config,
                               std::mt19937_64 rng)
    : simulator_{simulator}, config_{config}, rng_{std::move(rng)} {}

void ControlChannel::attach(const std::string& endpoint_name,
                            Endpoint endpoint) {
  endpoints_[endpoint_name] = std::move(endpoint);
}

void ControlChannel::send(const std::string& to, ControlMessage message) {
  ++stats_.sent;
  deliver(to, message, 0);
}

void ControlChannel::deliver(const std::string& to,
                             const ControlMessage& message, int attempt) {
  std::uniform_real_distribution<double> coin{0.0, 1.0};
  std::uniform_real_distribution<double> jitter{
      -to_seconds(config_.jitter), to_seconds(config_.jitter)};

  const bool lost = coin(rng_) < config_.loss_probability;
  if (lost) {
    if (attempt >= config_.max_retries) {
      ++stats_.dropped;
      return;
    }
    ++stats_.retransmitted;
    simulator_.after(config_.retry_timeout,
                     [this, to, message, attempt] {
                       deliver(to, message, attempt + 1);
                     });
    return;
  }

  Duration delay = config_.latency + from_seconds(jitter(rng_));
  if (delay < Duration::zero()) {
    delay = Duration::zero();
  }
  simulator_.after(delay, [this, to, message] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++stats_.undeliverable;
      return;
    }
    ++stats_.delivered;
    it->second(message);
  });
}

}  // namespace movr::sim
