#include <sim/control_channel.hpp>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace movr::sim {

ControlChannel::ControlChannel(Simulator& simulator, Config config,
                               std::mt19937_64 rng)
    : simulator_{simulator}, config_{config}, rng_{std::move(rng)} {}

void ControlChannel::attach(const std::string& endpoint_name,
                            Endpoint endpoint) {
  endpoints_[endpoint_name] = std::move(endpoint);
}

void ControlChannel::send(const std::string& to, ControlMessage message) {
  send(to, std::move(message), SendOutcome{});
}

void ControlChannel::send(const std::string& to, ControlMessage message,
                          SendOutcome outcome) {
  ++stats_.sent;
  ++stats_.in_flight;
  if (message.tag == 0) {
    message.tag = next_auto_tag_++;
  }
  auto transfer = std::make_shared<Transfer>();
  transfer->to = to;
  transfer->message = std::move(message);
  transfer->outcome = std::move(outcome);
  transfer->send_index = ++next_send_index_;
  deliver(transfer);
}

void ControlChannel::apply_fault(double loss_delta,
                                 Duration extra_latency_delta) {
  fault_loss_ += loss_delta;
  fault_extra_latency_ += extra_latency_delta;
  if (fault_loss_ < 0.0) {
    fault_loss_ = 0.0;
  }
  if (fault_extra_latency_ < Duration::zero()) {
    fault_extra_latency_ = Duration::zero();
  }
}

void ControlChannel::apply_partition(int delta) {
  partition_depth_ = std::max(0, partition_depth_ + delta);
}

double ControlChannel::effective_loss() const {
  return std::clamp(config_.loss_probability + fault_loss_, 0.0, 1.0);
}

void ControlChannel::finish(const TransferPtr& transfer, bool delivered) {
  if (transfer->outcome_fired) {
    return;
  }
  transfer->outcome_fired = true;
  if (transfer->outcome) {
    transfer->outcome(delivered);
  }
}

bool ControlChannel::remember_tag(EndpointState& state, std::uint64_t tag) {
  const auto it = state.seen.find(tag);
  if (it != state.seen.end()) {
    // Duplicate: refresh its recency so a hammered tag cannot age out of
    // the window and be redelivered as fresh (the LRU contract).
    state.order.splice(state.order.end(), state.order, it->second);
    return false;
  }
  state.order.push_back(tag);
  state.seen[tag] = std::prev(state.order.end());
  while (state.order.size() > config_.dedup_window) {
    state.seen.erase(state.order.front());
    state.order.pop_front();
  }
  return true;
}

ControlMessage ControlChannel::corrupt(ControlMessage message) {
  // A bit flip in the payload that the CRC missed. Flips stay within the
  // mantissa and low exponent bits, so the garbled value is still a finite
  // double — wildly wrong (up to x256 off), never NaN.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(message.value));
  std::memcpy(&bits, &message.value, sizeof(bits));
  std::uniform_int_distribution<int> bit{0, 54};
  bits ^= std::uint64_t{1} << bit(rng_);
  double garbled = 0.0;
  std::memcpy(&garbled, &bits, sizeof(garbled));
  message.value = std::isfinite(garbled) ? garbled : 0.0;
  return message;
}

void ControlChannel::retry_or_drop(const TransferPtr& transfer) {
  if (transfer->attempt >= config_.max_retries) {
    if (transfer->fate == Transfer::Fate::kPending) {
      transfer->fate = Transfer::Fate::kDropped;
      ++stats_.dropped;
      --stats_.in_flight;
    }
    finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
    return;
  }
  ++stats_.retransmitted;
  ++transfer->attempt;
  simulator_.after(config_.retry_timeout,
                   [this, transfer] { deliver(transfer); });
}

void ControlChannel::schedule_arrival(const TransferPtr& transfer,
                                      Duration delay, bool corrupt_copy) {
  const ControlMessage copy =
      corrupt_copy ? corrupt(transfer->message) : transfer->message;
  simulator_.after(delay, [this, transfer, copy] {
    arrive(transfer, copy);
    finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
  });
}

void ControlChannel::deliver(const TransferPtr& transfer) {
  std::uniform_real_distribution<double> coin{0.0, 1.0};
  std::uniform_real_distribution<double> jitter{
      -to_seconds(config_.jitter), to_seconds(config_.jitter)};

  // A partition eats every copy in both directions: no data, no acks, so
  // the link layer just burns its retries and gives up.
  if (partitioned()) {
    ++stats_.partition_losses;
    retry_or_drop(transfer);
    return;
  }

  const bool lost = coin(rng_) < effective_loss();
  if (lost) {
    // A "loss" is either the data frame (nothing arrives) or its ack (the
    // data arrived, the sender just doesn't know). Either way the link
    // layer retransmits, so an ack loss produces a duplicate downstream.
    const bool ack_lost = coin(rng_) < config_.ack_loss_fraction;
    if (ack_lost) {
      Duration delay = config_.latency + fault_extra_latency_ +
                       from_seconds(jitter(rng_));
      delay = std::max(delay, Duration::zero());
      schedule_arrival(transfer, delay, /*corrupt_copy=*/false);
    }
    if (transfer->attempt >= config_.max_retries) {
      if (!ack_lost) {
        if (transfer->fate == Transfer::Fate::kPending) {
          transfer->fate = Transfer::Fate::kDropped;
          ++stats_.dropped;
          --stats_.in_flight;
        }
        finish(transfer, transfer->fate == Transfer::Fate::kDelivered);
      }
      // ack_lost: the in-flight arrival above settles the outcome.
      return;
    }
    ++stats_.retransmitted;
    ++transfer->attempt;
    simulator_.after(config_.retry_timeout,
                     [this, transfer] { deliver(transfer); });
    return;
  }

  // The copy made it onto the air; it can still be corrupted in flight. A
  // CRC-detected corruption looks like a data-frame loss to the link layer
  // (drop + retransmit); an undetected one is delivered garbled.
  bool corrupt_copy = false;
  if (coin(rng_) < config_.corruption_probability) {
    if (coin(rng_) < config_.undetected_corruption_fraction) {
      corrupt_copy = true;
      ++stats_.corrupted_delivered;
    } else {
      ++stats_.corrupted_dropped;
      retry_or_drop(transfer);
      return;
    }
  }

  Duration delay = config_.latency + fault_extra_latency_ +
                   from_seconds(jitter(rng_));
  if (coin(rng_) < config_.reorder_probability) {
    delay += config_.reorder_delay;
  }
  delay = std::max(delay, Duration::zero());
  schedule_arrival(transfer, delay, corrupt_copy);
}

void ControlChannel::arrive(const TransferPtr& transfer,
                            const ControlMessage& copy) {
  const auto it = endpoints_.find(transfer->to);
  if (it == endpoints_.end()) {
    if (transfer->fate == Transfer::Fate::kPending) {
      ++stats_.undeliverable;
      transfer->fate = Transfer::Fate::kUndeliverable;
      --stats_.in_flight;
    }
    return;
  }
  // A copy arriving after the sender already gave up (fate kDropped) still
  // reaches the endpoint — at-least-once semantics — but the stats keep the
  // sender-side verdict, so each send counts under exactly one outcome.
  if (transfer->fate == Transfer::Fate::kPending) {
    transfer->fate = Transfer::Fate::kDelivered;
    ++stats_.delivered;
    --stats_.in_flight;
  }
  EndpointState& state = receiver_state_[transfer->to];
  if (!remember_tag(state, copy.tag)) {
    ++stats_.duplicates;
    return;  // idempotent: the endpoint never sees the duplicate
  }
  if (transfer->send_index < state.max_delivered_index) {
    ++stats_.reordered;  // a later send already got through
  } else {
    state.max_delivered_index = transfer->send_index;
  }
  it->second(copy);
}

}  // namespace movr::sim
