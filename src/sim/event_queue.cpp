#include <sim/event_queue.hpp>

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace movr::sim {

EventQueue::EventId EventQueue::schedule(TimePoint when, Handler handler) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(handler)});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

void EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;
  }
  if (!is_cancelled(id)) {
    cancelled_.push_back(id);
    if (live_count_ > 0) {
      --live_count_;
    }
  }
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && is_cancelled(heap_.top().id)) {
    const EventId id = heap_.top().id;
    cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), id),
                     cancelled_.end());
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  // live_count_ already excludes cancelled-but-not-popped entries.
  return live_count_ == 0;
}

TimePoint EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled();
  if (heap_.empty()) {
    throw std::logic_error{"EventQueue::next_time on empty queue"};
  }
  return heap_.top().when;
}

TimePoint EventQueue::run_next() {
  drop_cancelled();
  if (heap_.empty()) {
    throw std::logic_error{"EventQueue::run_next on empty queue"};
  }
  // Move the handler out before popping: the handler may schedule new
  // events, which mutates the heap.
  Entry top = heap_.top();
  heap_.pop();
  --live_count_;
  top.handler();
  return top.when;
}

}  // namespace movr::sim
