// Deterministic, named random streams.
//
// Every stochastic component (measurement noise, blocker motion, placement
// draws) pulls from its own stream derived from a master seed and a name, so
// adding randomness to one component never perturbs another — experiment
// runs stay reproducible and diffable.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace movr::sim {

class RngRegistry {
 public:
  explicit RngRegistry(std::uint64_t master_seed) : master_seed_{master_seed} {}

  /// A generator seeded from (master_seed, name). Same inputs, same stream.
  std::mt19937_64 stream(std::string_view name) const;

  /// A generator for run `index` of the named experiment.
  std::mt19937_64 stream(std::string_view name, std::uint64_t index) const;

  std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

/// FNV-1a, used to fold stream names into seeds (stable across platforms).
std::uint64_t fnv1a(std::string_view s);

}  // namespace movr::sim
