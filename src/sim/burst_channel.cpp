#include <sim/burst_channel.hpp>

#include <algorithm>

namespace movr::sim {

void BurstChannel::enter_bad() {
  state_ = State::kBad;
  ++counters_.bursts;
  current_burst_ = 0;
}

void BurstChannel::close_burst() {
  counters_.longest_burst_steps =
      std::max(counters_.longest_burst_steps, current_burst_);
  current_burst_ = 0;
  state_ = State::kGood;
}

BurstChannel::State BurstChannel::step() {
  ++counters_.steps;
  std::uniform_real_distribution<double> u{0.0, 1.0};
  const double roll = u(rng_);
  if (state_ == State::kGood) {
    if (roll < config_.p_good_bad) {
      enter_bad();
    }
  } else if (roll < config_.p_bad_good) {
    close_burst();
  }
  if (state_ == State::kBad) {
    ++counters_.steps_bad;
    ++current_burst_;
    counters_.longest_burst_steps =
        std::max(counters_.longest_burst_steps, current_burst_);
  }
  return state_;
}

void BurstChannel::force_bad() {
  if (state_ == State::kBad) {
    return;
  }
  enter_bad();
  ++counters_.forced_bad;
}

}  // namespace movr::sim
