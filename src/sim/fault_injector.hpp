// Scriptable fault injection driven by the event queue.
//
// MoVR's value proposition is that the link *degrades, not breaks* when the
// world misbehaves: blocked LOS, lossy Bluetooth, sagging amplifiers,
// rebooting reflectors. This subsystem turns those failure modes into a
// scripted, composable, replayable schedule — every fault is an event (or a
// window of events) on the simulator, so experiments and tests can script
// fault storms instead of hand-rolling one-off setups.
//
// The injector itself is type-agnostic: a fault is a named window with an
// apply/clear action pair (plus an optional periodic update for faults that
// evolve, e.g. a bias that drifts or a person that walks). Typed builders
// for the canonical MoVR faults live next to the types they perturb
// (vr/fault_scenarios.hpp); the one fault native to this module — a
// control-channel brownout — gets a typed helper here.
//
// Every scheduled fault is recorded in an applied-fault timeline that
// vr::Session reads to attribute glitches and measure time-to-recover.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::sim {

class FaultInjector {
 public:
  using Action = std::function<void()>;
  /// Evolution hook for windowed faults: progress runs 0 -> 1 over the
  /// fault window.
  using Sweep = std::function<void(double progress)>;

  struct AppliedFault {
    std::string name;
    TimePoint start{};
    TimePoint end{};  // == start for pulses
    bool applied{false};
    bool cleared{false};
  };

  explicit FaultInjector(Simulator& simulator) : simulator_{simulator} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// A fault active during [start, start + duration): `apply` runs at
  /// start, `clear` (optional) at the window end. Returns a timeline index.
  std::size_t inject(std::string name, TimePoint start, Duration duration,
                     Action apply, Action clear = {});

  /// An instantaneous fault (e.g. a reflector power-cycle).
  std::size_t inject_pulse(std::string name, TimePoint at, Action apply);

  /// A windowed fault whose effect evolves: `update(progress)` fires at
  /// start, then every `tick` until the window closes (progress clamped to
  /// [0, 1]); `clear` (optional) runs at the end.
  std::size_t inject_sweep(std::string name, TimePoint start,
                           Duration duration, Duration tick, Sweep update,
                           Action clear = {});

  /// Timed control-channel brownout: stacks `extra_loss` probability and
  /// `extra_latency` onto `channel` for the window, then removes them.
  /// Overlapping brownouts compose (losses add, clamped to 1).
  std::size_t inject_control_brownout(ControlChannel& channel,
                                      TimePoint start, Duration duration,
                                      double extra_loss,
                                      Duration extra_latency);

  /// Timed control-plane partition: nothing crosses `channel` (either
  /// direction) for the window. Overlapping partitions stack.
  std::size_t inject_control_partition(ControlChannel& channel,
                                       TimePoint start, Duration duration);

  /// Everything scheduled so far, in scheduling order, with applied/cleared
  /// flags that flip as the simulation executes the schedule.
  const std::vector<AppliedFault>& timeline() const { return timeline_; }

  /// Faults whose window covers `t` (pulses count only at their instant).
  std::size_t active_count(TimePoint t) const;

  Simulator& simulator() { return simulator_; }

 private:
  void tick_sweep(std::size_t index, TimePoint start, Duration duration,
                  Duration tick, const Sweep& update);

  Simulator& simulator_;
  std::vector<AppliedFault> timeline_;
};

}  // namespace movr::sim
