#include <sim/fault_injector.hpp>

#include <algorithm>
#include <utility>

namespace movr::sim {

std::size_t FaultInjector::inject(std::string name, TimePoint start,
                                  Duration duration, Action apply,
                                  Action clear) {
  const std::size_t index = timeline_.size();
  timeline_.push_back({std::move(name), start, start + duration, false, false});
  simulator_.at(start, [this, index, apply = std::move(apply)] {
    timeline_[index].applied = true;
    if (apply) {
      apply();
    }
  });
  simulator_.at(start + duration, [this, index, clear = std::move(clear)] {
    timeline_[index].cleared = true;
    if (clear) {
      clear();
    }
  });
  return index;
}

std::size_t FaultInjector::inject_pulse(std::string name, TimePoint at,
                                        Action apply) {
  const std::size_t index = timeline_.size();
  timeline_.push_back({std::move(name), at, at, false, false});
  simulator_.at(at, [this, index, apply = std::move(apply)] {
    timeline_[index].applied = true;
    timeline_[index].cleared = true;
    if (apply) {
      apply();
    }
  });
  return index;
}

void FaultInjector::tick_sweep(std::size_t index, TimePoint start,
                               Duration duration, Duration tick,
                               const Sweep& update) {
  const TimePoint now = simulator_.now();
  const double progress =
      duration <= Duration::zero()
          ? 1.0
          : std::clamp(static_cast<double>((now - start).count()) /
                           static_cast<double>(duration.count()),
                       0.0, 1.0);
  update(progress);
  const TimePoint next = now + std::max(tick, Duration{1});
  if (next < start + duration) {
    simulator_.at(next, [this, index, start, duration, tick, update] {
      tick_sweep(index, start, duration, tick, update);
    });
  }
}

std::size_t FaultInjector::inject_sweep(std::string name, TimePoint start,
                                        Duration duration, Duration tick,
                                        Sweep update, Action clear) {
  const std::size_t index = timeline_.size();
  timeline_.push_back({std::move(name), start, start + duration, false, false});
  simulator_.at(start, [this, index, start, duration, tick, update] {
    timeline_[index].applied = true;
    tick_sweep(index, start, duration, tick, update);
  });
  // The window end always delivers progress == 1 (the tick grid rarely
  // lands on it exactly), then clears.
  simulator_.at(start + duration,
                [this, index, update = std::move(update),
                 clear = std::move(clear)] {
    timeline_[index].cleared = true;
    update(1.0);
    if (clear) {
      clear();
    }
  });
  return index;
}

std::size_t FaultInjector::inject_control_brownout(ControlChannel& channel,
                                                   TimePoint start,
                                                   Duration duration,
                                                   double extra_loss,
                                                   Duration extra_latency) {
  return inject(
      "control_brownout", start, duration,
      [&channel, extra_loss, extra_latency] {
        channel.apply_fault(extra_loss, extra_latency);
      },
      [&channel, extra_loss, extra_latency] {
        channel.apply_fault(-extra_loss, -extra_latency);
      });
}

std::size_t FaultInjector::inject_control_partition(ControlChannel& channel,
                                                    TimePoint start,
                                                    Duration duration) {
  return inject(
      "control_partition", start, duration,
      [&channel] { channel.apply_partition(+1); },
      [&channel] { channel.apply_partition(-1); });
}

std::size_t FaultInjector::active_count(TimePoint t) const {
  std::size_t n = 0;
  for (const AppliedFault& fault : timeline_) {
    if (fault.start == fault.end ? t == fault.start
                                 : (t >= fault.start && t < fault.end)) {
      ++n;
    }
  }
  return n;
}

}  // namespace movr::sim
