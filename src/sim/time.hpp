// Simulation time as strong chrono types.
//
// VR timing spans nine orders of magnitude in one system — sub-microsecond
// beam steering, millisecond Bluetooth exchanges, 11.1 ms frame budgets,
// multi-minute sessions — so time is integer nanoseconds, never double
// seconds, to keep event ordering exact.
#pragma once

#include <chrono>
#include <cstdint>

namespace movr::sim {

using Duration = std::chrono::nanoseconds;
using TimePoint = Duration;  // nanoseconds since simulation start

using namespace std::chrono_literals;

constexpr Duration from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9)};
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}

constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-6;
}

constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-3;
}

}  // namespace movr::sim
