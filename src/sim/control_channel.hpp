// The Bluetooth-class control link between the AP and each MoVR reflector.
//
// The paper's reflector "has a bluetooth link with the AP to exchange
// control information" (Section 4). Control messages are tiny but not free:
// a BLE connection-event exchange costs milliseconds and can drop. The
// angle-search protocol's running time (part of the latency budget in
// Section 6) is dominated by these exchanges, so the channel models latency,
// jitter and loss explicitly.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>

#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::sim {

struct ControlMessage {
  std::string topic;      // e.g. "set_rx_angle", "modulate_on"
  double value{0.0};      // numeric payload (angle, gain code, ...)
  std::uint64_t tag{0};   // correlates request/response pairs
};

class ControlChannel {
 public:
  struct Config {
    Duration latency{sim::Duration{3'000'000}};  // 3 ms BLE connection event
    Duration jitter{sim::Duration{500'000}};     // +/- 0.5 ms uniform
    double loss_probability{0.0};
    /// Lost messages are retransmitted after this timeout (BLE link-layer
    /// retry, surfaced here as extra latency rather than loss).
    Duration retry_timeout{sim::Duration{7'500'000}};
    int max_retries{3};
  };

  using Endpoint = std::function<void(const ControlMessage&)>;

  ControlChannel(Simulator& simulator, Config config, std::mt19937_64 rng);

  /// Registers a receiver. Messages to an unknown endpoint are dropped and
  /// counted (visible in stats()).
  void attach(const std::string& endpoint_name, Endpoint endpoint);

  /// Sends a message; delivery is asynchronous via the simulator.
  void send(const std::string& to, ControlMessage message);

  struct Stats {
    std::uint64_t sent{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped{0};       // lost after all retries
    std::uint64_t retransmitted{0};
    std::uint64_t undeliverable{0};  // no such endpoint
  };
  const Stats& stats() const { return stats_; }

 private:
  void deliver(const std::string& to, const ControlMessage& message,
               int attempt);

  Simulator& simulator_;
  Config config_;
  std::mt19937_64 rng_;
  std::unordered_map<std::string, Endpoint> endpoints_;
  Stats stats_;
};

}  // namespace movr::sim
