// The Bluetooth-class control link between the AP and each MoVR reflector.
//
// The paper's reflector "has a bluetooth link with the AP to exchange
// control information" (Section 4). Control messages are tiny but not free:
// a BLE connection-event exchange costs milliseconds and can drop. The
// angle-search protocol's running time (part of the latency budget in
// Section 6) is dominated by these exchanges, so the channel models latency,
// jitter and loss explicitly.
//
// Delivery is at-least-once: the link layer retransmits until acked, and a
// lost *ack* makes the sender retransmit a message the receiver already has.
// Receivers therefore dedup by message tag, making delivery effectively
// idempotent; suppressed copies are visible in Stats::duplicates.
//
// Beyond loss and duplication the channel models the three control-plane
// failure modes a hardened deployment must survive:
//
//  - *Corruption*: a copy's payload is bit-flipped in flight. The CRC
//    catches most of these (the copy is dropped and the link layer
//    retransmits, visible as corrupted_dropped); a small fraction slips
//    through undetected and is delivered with a garbled value
//    (corrupted_delivered) — the failure the config-epoch digest protocol
//    in core/config_epoch.hpp exists to catch.
//  - *Reordering*: a copy can be held back (reorder_probability), letting a
//    later send overtake it. Deliveries that arrive behind a later send are
//    counted in Stats::reordered (jitter-induced overtakes count too).
//  - *Partitions*: while partitioned (sim::FaultInjector-scripted windows,
//    stacking like brownouts) nothing crosses in either direction; sends
//    burn their retries and drop.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>

#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::sim {

struct ControlMessage {
  std::string topic;      // e.g. "set_rx_angle", "modulate_on"
  double value{0.0};      // numeric payload (angle, gain code, ...)
  std::uint64_t tag{0};   // unique message id; 0 = auto-assigned on send
  std::uint64_t seq{0};   // config-epoch sequence number (0 = none)
};

class ControlChannel {
 public:
  struct Config {
    Duration latency{sim::Duration{3'000'000}};  // 3 ms BLE connection event
    Duration jitter{sim::Duration{500'000}};     // +/- 0.5 ms uniform
    double loss_probability{0.0};
    /// Lost messages are retransmitted after this timeout (BLE link-layer
    /// retry, surfaced here as extra latency rather than loss).
    Duration retry_timeout{sim::Duration{7'500'000}};
    int max_retries{3};
    /// Fraction of loss events that are ACK losses: the data frame arrived
    /// but the acknowledgement did not, so the sender retransmits a message
    /// the receiver already delivered — the duplicate-delivery race.
    double ack_loss_fraction{0.0};
    /// Tags remembered per endpoint for duplicate suppression. Eviction is
    /// LRU: a duplicate refreshes its tag's recency, so a tag being
    /// hammered with retransmissions cannot age out of the window and come
    /// back as a "fresh" message.
    std::size_t dedup_window{256};
    /// Per-copy probability that the payload is corrupted in flight.
    double corruption_probability{0.0};
    /// Fraction of corruptions the CRC misses: the copy is delivered with
    /// a bit-flipped value instead of being dropped and retransmitted.
    double undetected_corruption_fraction{0.0};
    /// Per-copy probability of being held back by reorder_delay, letting
    /// later sends overtake it.
    double reorder_probability{0.0};
    Duration reorder_delay{sim::Duration{6'000'000}};
  };

  using Endpoint = std::function<void(const ControlMessage&)>;
  /// Sender-side delivery outcome (the BLE link layer knows whether its
  /// retries were acked). Fired once per send, when the fate is decided.
  using SendOutcome = std::function<void(bool delivered)>;

  ControlChannel(Simulator& simulator, Config config, std::mt19937_64 rng);

  /// Registers a receiver. Messages to an unknown endpoint are dropped and
  /// counted (visible in stats()).
  void attach(const std::string& endpoint_name, Endpoint endpoint);

  /// Sends a message; delivery is asynchronous via the simulator. A zero
  /// tag is replaced with a fresh unique tag (deduplication needs one).
  void send(const std::string& to, ControlMessage message);
  void send(const std::string& to, ControlMessage message,
            SendOutcome outcome);

  // --- fault hooks (driven by sim::FaultInjector) ---------------------
  /// Adds (or, with negative deltas, removes) a loss/latency impairment.
  /// Overlapping faults stack; effective loss is clamped to [0, 1].
  void apply_fault(double loss_delta, Duration extra_latency_delta);
  double fault_loss() const { return fault_loss_; }
  Duration fault_extra_latency() const { return fault_extra_latency_; }

  /// Enters (+1) or leaves (-1) a partition window. Overlapping windows
  /// stack; the channel is partitioned while the depth is positive, and
  /// nothing crosses in either direction.
  void apply_partition(int delta);
  bool partitioned() const { return partition_depth_ > 0; }

  struct Stats {
    std::uint64_t sent{0};
    std::uint64_t delivered{0};     // reached the endpoint (once per send)
    std::uint64_t dropped{0};       // lost after all retries
    std::uint64_t in_flight{0};     // sent, fate not yet decided
    std::uint64_t retransmitted{0};
    std::uint64_t undeliverable{0};  // no such endpoint
    std::uint64_t duplicates{0};     // redundant copies suppressed by dedup
    std::uint64_t corrupted_dropped{0};    // CRC caught it, copy dropped
    std::uint64_t corrupted_delivered{0};  // CRC missed it, garbled payload
    std::uint64_t reordered{0};      // delivered behind a later send
    std::uint64_t partition_losses{0};  // copies eaten by a partition
  };
  /// Invariant at EVERY instant: sent == delivered + dropped +
  /// undeliverable + in_flight (in_flight drains to zero at quiescence) —
  /// duplicates, corruption, reorder and partition counters are separate
  /// axes and never double-count a send.
  const Stats& stats() const { return stats_; }

 private:
  /// One send() in flight, shared across its retransmission attempts so a
  /// late duplicate cannot double-count delivery or drop: each transfer is
  /// assigned exactly one fate, the first one decided.
  struct Transfer {
    enum class Fate { kPending, kDelivered, kDropped, kUndeliverable };
    std::string to;
    ControlMessage message;
    int attempt{0};
    Fate fate{Fate::kPending};
    SendOutcome outcome;
    bool outcome_fired{false};
    /// Monotonic send order, used to detect visible reordering.
    std::uint64_t send_index{0};
  };
  using TransferPtr = std::shared_ptr<Transfer>;

  void deliver(const TransferPtr& transfer);
  void schedule_arrival(const TransferPtr& transfer, Duration delay,
                        bool corrupt_copy);
  void arrive(const TransferPtr& transfer, const ControlMessage& copy);
  void finish(const TransferPtr& transfer, bool delivered);
  void retry_or_drop(const TransferPtr& transfer);
  double effective_loss() const;
  ControlMessage corrupt(ControlMessage message);

  /// Per-endpoint receiver state: LRU window of recently seen tags plus
  /// the highest send index delivered (for reorder detection).
  struct EndpointState {
    std::list<std::uint64_t> order;  // front = least recently seen
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        seen;
    std::uint64_t max_delivered_index{0};
  };
  bool remember_tag(EndpointState& state, std::uint64_t tag);

  Simulator& simulator_;
  Config config_;
  std::mt19937_64 rng_;
  std::unordered_map<std::string, Endpoint> endpoints_;
  std::unordered_map<std::string, EndpointState> receiver_state_;
  Stats stats_;
  double fault_loss_{0.0};
  Duration fault_extra_latency_{Duration::zero()};
  int partition_depth_{0};
  // Auto-assigned tags start far above any hand-written test tag.
  std::uint64_t next_auto_tag_{std::uint64_t{1} << 32};
  std::uint64_t next_send_index_{0};
};

}  // namespace movr::sim
