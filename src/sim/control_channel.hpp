// The Bluetooth-class control link between the AP and each MoVR reflector.
//
// The paper's reflector "has a bluetooth link with the AP to exchange
// control information" (Section 4). Control messages are tiny but not free:
// a BLE connection-event exchange costs milliseconds and can drop. The
// angle-search protocol's running time (part of the latency budget in
// Section 6) is dominated by these exchanges, so the channel models latency,
// jitter and loss explicitly.
//
// Delivery is at-least-once: the link layer retransmits until acked, and a
// lost *ack* makes the sender retransmit a message the receiver already has.
// Receivers therefore dedup by message tag, making delivery effectively
// idempotent; suppressed copies are visible in Stats::duplicates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::sim {

struct ControlMessage {
  std::string topic;      // e.g. "set_rx_angle", "modulate_on"
  double value{0.0};      // numeric payload (angle, gain code, ...)
  std::uint64_t tag{0};   // unique message id; 0 = auto-assigned on send
};

class ControlChannel {
 public:
  struct Config {
    Duration latency{sim::Duration{3'000'000}};  // 3 ms BLE connection event
    Duration jitter{sim::Duration{500'000}};     // +/- 0.5 ms uniform
    double loss_probability{0.0};
    /// Lost messages are retransmitted after this timeout (BLE link-layer
    /// retry, surfaced here as extra latency rather than loss).
    Duration retry_timeout{sim::Duration{7'500'000}};
    int max_retries{3};
    /// Fraction of loss events that are ACK losses: the data frame arrived
    /// but the acknowledgement did not, so the sender retransmits a message
    /// the receiver already delivered — the duplicate-delivery race.
    double ack_loss_fraction{0.0};
    /// Tags remembered per endpoint for duplicate suppression.
    std::size_t dedup_window{256};
  };

  using Endpoint = std::function<void(const ControlMessage&)>;
  /// Sender-side delivery outcome (the BLE link layer knows whether its
  /// retries were acked). Fired once per send, when the fate is decided.
  using SendOutcome = std::function<void(bool delivered)>;

  ControlChannel(Simulator& simulator, Config config, std::mt19937_64 rng);

  /// Registers a receiver. Messages to an unknown endpoint are dropped and
  /// counted (visible in stats()).
  void attach(const std::string& endpoint_name, Endpoint endpoint);

  /// Sends a message; delivery is asynchronous via the simulator. A zero
  /// tag is replaced with a fresh unique tag (deduplication needs one).
  void send(const std::string& to, ControlMessage message);
  void send(const std::string& to, ControlMessage message,
            SendOutcome outcome);

  // --- fault hooks (driven by sim::FaultInjector) ---------------------
  /// Adds (or, with negative deltas, removes) a loss/latency impairment.
  /// Overlapping faults stack; effective loss is clamped to [0, 1].
  void apply_fault(double loss_delta, Duration extra_latency_delta);
  double fault_loss() const { return fault_loss_; }
  Duration fault_extra_latency() const { return fault_extra_latency_; }

  struct Stats {
    std::uint64_t sent{0};
    std::uint64_t delivered{0};     // reached the endpoint (once per send)
    std::uint64_t dropped{0};       // lost after all retries
    std::uint64_t retransmitted{0};
    std::uint64_t undeliverable{0};  // no such endpoint
    std::uint64_t duplicates{0};     // redundant copies suppressed by dedup
  };
  /// Invariant: sent == delivered + dropped + undeliverable — duplicates
  /// are counted separately and never double-count a send.
  const Stats& stats() const { return stats_; }

 private:
  /// One send() in flight, shared across its retransmission attempts so a
  /// late duplicate cannot double-count delivery or drop: each transfer is
  /// assigned exactly one fate, the first one decided.
  struct Transfer {
    enum class Fate { kPending, kDelivered, kDropped, kUndeliverable };
    std::string to;
    ControlMessage message;
    int attempt{0};
    Fate fate{Fate::kPending};
    SendOutcome outcome;
    bool outcome_fired{false};
  };
  using TransferPtr = std::shared_ptr<Transfer>;

  void deliver(const TransferPtr& transfer);
  void arrive(const TransferPtr& transfer);
  void finish(const TransferPtr& transfer, bool delivered);
  double effective_loss() const;

  /// Per-endpoint sliding window of recently seen tags.
  struct DedupWindow {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;
  };
  bool remember_tag(DedupWindow& window, std::uint64_t tag);

  Simulator& simulator_;
  Config config_;
  std::mt19937_64 rng_;
  std::unordered_map<std::string, Endpoint> endpoints_;
  std::unordered_map<std::string, DedupWindow> dedup_;
  Stats stats_;
  double fault_loss_{0.0};
  Duration fault_extra_latency_{Duration::zero()};
  // Auto-assigned tags start far above any hand-written test tag.
  std::uint64_t next_auto_tag_{std::uint64_t{1} << 32};
};

}  // namespace movr::sim
