// 802.11ad MAC-layer goodput.
//
// The paper needs "multiple Gbps" *delivered*; the MCS ladder quotes PHY
// rates. Between the two sit the preamble, PHY header, MAC framing, block
// acks and inter-frame spaces. This module computes how much of an MCS's
// PHY rate survives as goodput with A-MPDU aggregation — the check behind
// "MCS 24 at 6.76 Gb/s really does carry the Vive's 5.6 Gb/s stream".
#pragma once

#include <phy/mcs.hpp>
#include <sim/time.hpp>

namespace movr::phy {

struct AirtimeConfig {
  /// Short training field + channel estimation + PHY header (SC PHY).
  sim::Duration preamble{std::chrono::nanoseconds{1891}};
  /// Aggregated MPDU payload per PPDU, bytes (ad allows up to 262 kB).
  double ampdu_bytes{131072.0};
  /// Per-MPDU MAC header + delimiter overhead, fraction of payload.
  double mac_overhead{0.02};
  /// Block-ack exchange + SIFS per PPDU.
  sim::Duration ack_exchange{std::chrono::microseconds{5}};
  /// Expected retransmission overhead: effective goodput scales by
  /// (1 - per)^(1) per MPDU burst, approximated at the PPDU level.
  double packet_error_rate{0.001};
};

/// Time on air of one PPDU carrying `config.ampdu_bytes` at `mcs`.
sim::Duration ppdu_airtime(const McsEntry& mcs, const AirtimeConfig& config);

/// Delivered MAC goodput at `mcs`, Mbps.
double goodput_mbps(const McsEntry& mcs, const AirtimeConfig& config);

/// Lowest MCS whose *goodput* (not PHY rate) sustains `required_mbps`;
/// nullptr when none does.
const McsEntry* mcs_for_goodput(double required_mbps,
                                const AirtimeConfig& config);

}  // namespace movr::phy
