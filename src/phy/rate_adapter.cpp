#include <phy/rate_adapter.hpp>

namespace movr::phy {

void RateAdapter::reset() {
  current_ = nullptr;
  stable_count_ = 0;
  stats_ = Stats{};
}

const McsEntry* RateAdapter::on_estimate(rf::Decibels estimated_snr) {
  ++stats_.estimates;
  const rf::Decibels backed_off = estimated_snr - config_.margin;
  const McsEntry* safe = best_mcs(backed_off);

  if (safe == nullptr) {
    if (current_ != nullptr) {
      ++stats_.downgrades;
    }
    current_ = nullptr;
    stable_count_ = 0;
    return current_;
  }

  if (current_ == nullptr || safe->rate_mbps < current_->rate_mbps) {
    // Downgrades (and initial association) take effect immediately: staying
    // too high bleeds packets.
    if (current_ != nullptr) {
      ++stats_.downgrades;
    }
    current_ = safe;
    stable_count_ = 0;
    return current_;
  }

  if (safe->rate_mbps == current_->rate_mbps) {
    stable_count_ = 0;  // no headroom: sit where we are
    return current_;
  }

  // Headroom exists. Upgrade only with hysteresis and a stability streak.
  const McsEntry* careful = best_mcs(backed_off - config_.up_hysteresis);
  if (careful != nullptr && careful->rate_mbps > current_->rate_mbps) {
    if (++stable_count_ >= config_.stable_before_upgrade) {
      current_ = careful;
      stable_count_ = 0;
      ++stats_.upgrades;
    }
  } else {
    stable_count_ = 0;
  }
  return current_;
}

}  // namespace movr::phy
