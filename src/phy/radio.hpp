// A radio node: a phased array at a position and mounting orientation.
//
// Frame conventions:
//   * global azimuths are radians CCW from the room's +x axis;
//   * the array's *local* angles follow movr::rf::PhasedArray (array along
//     local x, boresight at pi/2);
//   * `orientation` is the global azimuth of the array's boresight.
#pragma once

#include <complex>

#include <geom/angle.hpp>
#include <geom/vec2.hpp>
#include <rf/phased_array.hpp>
#include <rf/units.hpp>

namespace movr::phy {

/// Complex far-field factor of an array toward a *local* angle: amplitude
/// sqrt(linear gain), phase from the array response. The building block for
/// coherent multipath summation, shared by RadioNode and the reflector's
/// front-end arrays.
std::complex<double> array_response(const rf::PhasedArray& array,
                                    double local_angle);

class RadioNode {
 public:
  RadioNode(geom::Vec2 position, double orientation_rad,
            rf::PhasedArray::Config array_config = {},
            rf::DbmPower tx_power = rf::DbmPower{0.0})
      : position_{position},
        orientation_{orientation_rad},
        array_{array_config},
        tx_power_{tx_power} {}

  geom::Vec2 position() const { return position_; }
  void set_position(geom::Vec2 p) { position_ = p; }

  double orientation() const { return orientation_; }
  void set_orientation(double radians) { orientation_ = radians; }

  rf::DbmPower tx_power() const { return tx_power_; }
  void set_tx_power(rf::DbmPower p) { tx_power_ = p; }

  const rf::PhasedArray& array() const { return array_; }
  rf::PhasedArray& array() { return array_; }

  /// Converts a global azimuth into the array's local angle.
  double to_local(double global_azimuth) const {
    return geom::wrap_two_pi(global_azimuth - orientation_ + geom::kPi / 2.0);
  }
  double to_global(double local_angle) const {
    return geom::wrap_pi(local_angle + orientation_ - geom::kPi / 2.0);
  }

  /// Steers the beam toward a global azimuth.
  void steer_global(double global_azimuth) {
    array_.steer(to_local(global_azimuth));
  }
  /// Steers the beam at a point in the room.
  void steer_toward(geom::Vec2 target) {
    steer_global((target - position_).heading());
  }

  /// Re-mounts the boresight toward `target` and steers to it. Models a
  /// node with array faces covering the full azimuth (e.g. a headset with
  /// antennas around the visor): the face toward the peer is selected, so
  /// no peer is ever behind the ground plane. Blockage still applies — an
  /// obstacle in the way attenuates regardless of which face listens.
  void face_toward(geom::Vec2 target) {
    set_orientation((target - position_).heading());
    array_.steer(geom::kPi / 2.0);
  }
  /// Current steering as a global azimuth.
  double steering_global() const { return to_global(array_.steering()); }

  /// Realised gain toward a global azimuth with the current steering.
  rf::Decibels gain_toward(double global_azimuth) const {
    return array_.gain(to_local(global_azimuth));
  }

  /// Complex far-field factor toward a global azimuth: amplitude is
  /// sqrt(linear gain), phase from the array response. Used for coherent
  /// multipath summation.
  std::complex<double> response_toward(double global_azimuth) const;

 private:
  geom::Vec2 position_;
  double orientation_;
  rf::PhasedArray array_;
  rf::DbmPower tx_power_;
};

}  // namespace movr::phy
