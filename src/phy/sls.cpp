#include <phy/sls.hpp>

#include <algorithm>
#include <cmath>

namespace movr::phy {

sim::Duration sls_duration(const SlsConfig& config) {
  const auto per_sector = config.ssw_frame + config.short_ifs;
  return per_sector * (config.initiator_sectors + config.responder_sectors) +
         config.feedback;
}

int sectors_for_coverage(double coverage_deg, double beamwidth_deg) {
  if (beamwidth_deg <= 0.0) {
    return 1;
  }
  return std::max(1, static_cast<int>(std::ceil(coverage_deg / beamwidth_deg)));
}

}  // namespace movr::phy
