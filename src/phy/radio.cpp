#include <phy/radio.hpp>

#include <cmath>

namespace movr::phy {

std::complex<double> array_response(const rf::PhasedArray& array,
                                    double local_angle) {
  const double amplitude = std::sqrt(array.gain(local_angle).linear());
  const std::complex<double> f = array.field(local_angle);
  const double mag = std::abs(f);
  if (mag < 1e-12) {
    return {amplitude, 0.0};  // deep null: floored gain, arbitrary phase
  }
  return amplitude * (f / mag);
}

std::complex<double> RadioNode::response_toward(double global_azimuth) const {
  return array_response(array_, to_local(global_azimuth));
}

}  // namespace movr::phy
