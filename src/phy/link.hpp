// Link-budget evaluation: from traced paths and steered arrays to received
// power and SNR. This is the function every experiment in the paper reduces
// to: "place radios, steer beams, read the SNR".
#pragma once

#include <complex>
#include <span>
#include <vector>

#include <channel/path.hpp>
#include <phy/radio.hpp>
#include <rf/units.hpp>

namespace movr::phy {

struct LinkConfig {
  double carrier_hz{24.0e9};       // 24 GHz ISM band, as the prototype
  double bandwidth_hz{2.16e9};     // one 802.11ad channel
  rf::Decibels noise_figure{7.0};
  /// Fixed end-to-end implementation loss (filters, pointing, polarization
  /// mismatch). Calibrates the LOS SNR in the 5x5 m room to the paper's
  /// measured ~25 dB mean (close-to-AP placements reach 30-35 dB, Sec. 5.2)
  /// while keeping far-corner LOS above the max-rate threshold.
  rf::Decibels implementation_loss{11.0};
  /// Frequency points averaged across the channel when summing multipath.
  /// A 2.16 GHz OFDM signal (and a swept measurement tone) sees the
  /// *frequency-averaged* channel, not a single-tone fade: without this,
  /// deterministic single-frequency nulls produce artifacts no wideband
  /// radio would measure. 1 = narrowband (single tone).
  int frequency_samples{8};
};

/// Receiver noise floor for this link configuration.
rf::DbmPower link_noise_floor(const LinkConfig& config);

/// One propagation path reduced to its band-centre complex amplitude (in
/// sqrt-milliwatts, including antenna responses) plus its length, which
/// sets how the phase rotates across the channel.
struct PathComponent {
  std::complex<double> base;
  double length_m{0.0};
};

/// Frequency-averaged received power of a set of path components, minus
/// `extra_loss`. The building block behind received_power and the
/// via-reflector hops in movr::core::Scene.
rf::DbmPower wideband_power(std::span<const PathComponent> components,
                            const LinkConfig& config, rf::Decibels extra_loss);

/// Received power at `rx` for a transmission from `tx` over `paths`,
/// with both arrays at their current steering. Multipath is summed
/// coherently with deterministic per-path phases from the path lengths.
rf::DbmPower received_power(const RadioNode& tx, const RadioNode& rx,
                            std::span<const channel::Path> paths,
                            const LinkConfig& config);

/// SNR of the same reception.
rf::Decibels link_snr(const RadioNode& tx, const RadioNode& rx,
                      std::span<const channel::Path> paths,
                      const LinkConfig& config);

}  // namespace movr::phy
