// 802.11ad sector-level sweep (SLS) timing model.
//
// The standard's own beam-training procedure is the yardstick for every
// search cost in this library: an initiator TX sector sweep, a responder
// sweep, and feedback, each sector carrying one short SSW frame. MoVR's
// backscatter search cannot use SLS (the reflector has no receiver), which
// is why its sweep is Bluetooth-paced instead — comparing the two costs is
// part of the Section 6 latency story.
#pragma once

#include <sim/time.hpp>

namespace movr::phy {

struct SlsConfig {
  /// Sectors swept by each side (the standard allows up to 128).
  int initiator_sectors{32};
  int responder_sectors{32};
  /// One SSW frame at MCS0 plus SBIFS spacing.
  sim::Duration ssw_frame{std::chrono::microseconds{16}};
  sim::Duration short_ifs{std::chrono::microseconds{1}};
  /// SSW feedback + ACK exchange.
  sim::Duration feedback{std::chrono::microseconds{50}};
};

/// Airtime of one complete SLS (both sweeps + feedback).
sim::Duration sls_duration(const SlsConfig& config);

/// Sectors needed to cover a sector of `coverage_deg` with beams of
/// `beamwidth_deg` (ceil, at least 1).
int sectors_for_coverage(double coverage_deg, double beamwidth_deg);

}  // namespace movr::phy
