// Closed-loop MCS selection.
//
// A real 802.11ad link never reads a true SNR: it picks an MCS from noisy
// estimates, pays packet loss when it overshoots, and upgrades carefully.
// This adapter implements the standard pattern — margin-backed selection,
// immediate downgrade, hysteresis-gated upgrade — so sessions can run with
// realistic rate control instead of the oracle rate_mbps(true_snr).
#pragma once

#include <cstdint>

#include <phy/mcs.hpp>
#include <rf/units.hpp>

namespace movr::phy {

class RateAdapter {
 public:
  struct Config {
    /// Safety margin subtracted from the SNR estimate before selection.
    rf::Decibels margin{1.0};
    /// Extra headroom required before stepping the rate up.
    rf::Decibels up_hysteresis{1.5};
    /// Consecutive clean estimates required before an upgrade.
    int stable_before_upgrade{16};
  };

  RateAdapter() : RateAdapter{Config{}} {}
  explicit RateAdapter(Config config) : config_{config} {}

  const Config& config() const { return config_; }

  /// Feeds one SNR estimate; returns the MCS to use for the next frame
  /// (nullptr when even MCS0 is undecodable).
  const McsEntry* on_estimate(rf::Decibels estimated_snr);

  const McsEntry* current() const { return current_; }
  double current_rate_mbps() const {
    return current_ != nullptr ? current_->rate_mbps : 0.0;
  }

  struct Stats {
    std::uint64_t upgrades{0};
    std::uint64_t downgrades{0};
    std::uint64_t estimates{0};
  };
  const Stats& stats() const { return stats_; }

  void reset();

 private:
  Config config_;
  const McsEntry* current_{nullptr};
  int stable_count_{0};
  Stats stats_;
};

}  // namespace movr::phy
