// The IEEE 802.11ad modulation-and-coding ladder.
//
// The paper computes Fig. 3's data rates "by substituting the SNR
// measurements into standard rate tables based on the 802.11ad modulation
// and code rates" — this module is that table. Rates are the standard's
// PHY rates for one 2.16 GHz channel; the SNR thresholds are derived from
// the standard's receiver-sensitivity requirements referenced to the
// channel noise floor.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include <rf/units.hpp>

namespace movr::phy {

enum class PhyKind : std::uint8_t { kControl, kSingleCarrier, kOfdm };

struct McsEntry {
  int index;
  PhyKind phy;
  std::string_view modulation;
  std::string_view code_rate;
  double rate_mbps;
  /// Minimum SNR at which this MCS sustains ~1% PER.
  rf::Decibels min_snr;
};

/// The full MCS 0..24 table, ordered by index.
std::span<const McsEntry> mcs_table();

/// Highest-rate MCS decodable at `snr`, or nullptr if even MCS0 fails.
const McsEntry* best_mcs(rf::Decibels snr);

/// PHY rate achievable at `snr`, in Mbps (0 when the link is down).
double rate_mbps(rf::Decibels snr);

/// Lowest SNR that sustains at least `required_mbps`; returns the MCS, or
/// nullptr when no MCS is fast enough.
const McsEntry* mcs_for_rate(double required_mbps);

/// Packet error rate at `snr` for the given MCS: waterfall curve around the
/// threshold (1% design point at min_snr, improving ~1 decade per dB).
double packet_error_rate(const McsEntry& mcs, rf::Decibels snr);

}  // namespace movr::phy
