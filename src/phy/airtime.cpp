#include <phy/airtime.hpp>

namespace movr::phy {

sim::Duration ppdu_airtime(const McsEntry& mcs, const AirtimeConfig& config) {
  const double payload_bits =
      config.ampdu_bytes * 8.0 * (1.0 + config.mac_overhead);
  const double payload_seconds = payload_bits / (mcs.rate_mbps * 1e6);
  return config.preamble + sim::from_seconds(payload_seconds) +
         config.ack_exchange;
}

double goodput_mbps(const McsEntry& mcs, const AirtimeConfig& config) {
  const sim::Duration airtime = ppdu_airtime(mcs, config);
  const double useful_bits = config.ampdu_bytes * 8.0;
  const double raw = useful_bits / sim::to_seconds(airtime) / 1e6;
  return raw * (1.0 - config.packet_error_rate);
}

const McsEntry* mcs_for_goodput(double required_mbps,
                                const AirtimeConfig& config) {
  const McsEntry* best = nullptr;
  for (const McsEntry& entry : mcs_table()) {
    if (goodput_mbps(entry, config) >= required_mbps &&
        (best == nullptr || entry.min_snr < best->min_snr)) {
      best = &entry;
    }
  }
  return best;
}

}  // namespace movr::phy
