#include <phy/mcs.hpp>

#include <algorithm>
#include <array>
#include <cmath>

namespace movr::phy {

namespace {

using rf::Decibels;

// Rates: IEEE 802.11ad-2012 Tables 21-18 (SC) and 21-14 (OFDM).
// SNR thresholds: receiver sensitivities (Table 21-3) referenced to a
// -68 dBm noise floor (2.16 GHz, NF 10 dB as the standard assumes), then
// smoothed to be monotone within each PHY.
constexpr std::array<McsEntry, 25> kTable{{
    {0, PhyKind::kControl, "pi/2-DBPSK", "1/2 x32", 27.5, Decibels{-12.0}},
    {1, PhyKind::kSingleCarrier, "pi/2-BPSK", "1/2 x2", 385.0, Decibels{1.0}},
    {2, PhyKind::kSingleCarrier, "pi/2-BPSK", "1/2", 770.0, Decibels{2.5}},
    {3, PhyKind::kSingleCarrier, "pi/2-BPSK", "5/8", 962.5, Decibels{3.0}},
    {4, PhyKind::kSingleCarrier, "pi/2-BPSK", "3/4", 1155.0, Decibels{4.0}},
    {5, PhyKind::kSingleCarrier, "pi/2-BPSK", "13/16", 1251.25, Decibels{4.5}},
    {6, PhyKind::kSingleCarrier, "pi/2-QPSK", "1/2", 1540.0, Decibels{5.5}},
    {7, PhyKind::kSingleCarrier, "pi/2-QPSK", "5/8", 1925.0, Decibels{6.5}},
    {8, PhyKind::kSingleCarrier, "pi/2-QPSK", "3/4", 2310.0, Decibels{7.5}},
    {9, PhyKind::kSingleCarrier, "pi/2-QPSK", "13/16", 2502.5, Decibels{8.5}},
    {10, PhyKind::kSingleCarrier, "pi/2-16QAM", "1/2", 3080.0, Decibels{10.5}},
    {11, PhyKind::kSingleCarrier, "pi/2-16QAM", "5/8", 3850.0, Decibels{12.0}},
    {12, PhyKind::kSingleCarrier, "pi/2-16QAM", "3/4", 4620.0, Decibels{13.5}},
    {13, PhyKind::kOfdm, "SQPSK", "1/2", 693.0, Decibels{2.0}},
    {14, PhyKind::kOfdm, "SQPSK", "5/8", 866.25, Decibels{3.5}},
    {15, PhyKind::kOfdm, "QPSK", "1/2", 1386.0, Decibels{5.0}},
    {16, PhyKind::kOfdm, "QPSK", "5/8", 1732.5, Decibels{6.5}},
    {17, PhyKind::kOfdm, "QPSK", "3/4", 2079.0, Decibels{8.0}},
    {18, PhyKind::kOfdm, "16QAM", "1/2", 2772.0, Decibels{10.5}},
    {19, PhyKind::kOfdm, "16QAM", "5/8", 3465.0, Decibels{12.5}},
    {20, PhyKind::kOfdm, "16QAM", "3/4", 4158.0, Decibels{14.5}},
    {21, PhyKind::kOfdm, "16QAM", "13/16", 4504.5, Decibels{15.5}},
    {22, PhyKind::kOfdm, "64QAM", "5/8", 5197.5, Decibels{17.5}},
    {23, PhyKind::kOfdm, "64QAM", "3/4", 6237.0, Decibels{19.0}},
    {24, PhyKind::kOfdm, "64QAM", "13/16", 6756.75, Decibels{20.5}},
}};

}  // namespace

std::span<const McsEntry> mcs_table() { return kTable; }

const McsEntry* best_mcs(rf::Decibels snr) {
  const McsEntry* best = nullptr;
  for (const McsEntry& entry : kTable) {
    if (snr >= entry.min_snr &&
        (best == nullptr || entry.rate_mbps > best->rate_mbps)) {
      best = &entry;
    }
  }
  return best;
}

double rate_mbps(rf::Decibels snr) {
  const McsEntry* mcs = best_mcs(snr);
  return mcs != nullptr ? mcs->rate_mbps : 0.0;
}

const McsEntry* mcs_for_rate(double required_mbps) {
  const McsEntry* best = nullptr;
  for (const McsEntry& entry : kTable) {
    if (entry.rate_mbps >= required_mbps &&
        (best == nullptr || entry.min_snr < best->min_snr)) {
      best = &entry;
    }
  }
  return best;
}

double packet_error_rate(const McsEntry& mcs, rf::Decibels snr) {
  // Waterfall: 1% PER at threshold, one decade per dB above, saturating
  // toward 1 below threshold over ~2 dB.
  const double margin = (snr - mcs.min_snr).value();
  const double log_per = -2.0 - margin;  // log10(PER)
  return std::clamp(std::pow(10.0, log_per), 0.0, 1.0);
}

}  // namespace movr::phy
