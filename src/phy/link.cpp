#include <phy/link.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

#include <rf/noise.hpp>
#include <rf/propagation.hpp>

namespace movr::phy {

rf::DbmPower link_noise_floor(const LinkConfig& config) {
  return rf::noise_floor(config.bandwidth_hz, config.noise_figure);
}

rf::DbmPower wideband_power(std::span<const PathComponent> components,
                            const LinkConfig& config,
                            rf::Decibels extra_loss) {
  // Average the received *power* over frequency points spanning the channel:
  // a 2.16 GHz-wide OFDM signal (or a swept measurement tone) experiences
  // the frequency-averaged fade, not a single-tone null. Across the band
  // only the electrical phase of each path moves appreciably.
  const int samples = std::max(config.frequency_samples, 1);
  double total_mw = 0.0;
  for (int k = 0; k < samples; ++k) {
    const double offset =
        samples == 1
            ? 0.0
            : ((static_cast<double>(k) + 0.5) / static_cast<double>(samples) -
               0.5) *
                  config.bandwidth_hz;
    const double lambda = rf::wavelength(config.carrier_hz + offset);
    std::complex<double> field{0.0, 0.0};
    for (const PathComponent& c : components) {
      const double electrical_phase =
          -2.0 * std::numbers::pi * c.length_m / lambda;
      field += c.base * std::polar(1.0, electrical_phase);
    }
    total_mw += std::norm(field);
  }
  total_mw /= static_cast<double>(samples);
  if (total_mw <= 0.0) {
    return rf::DbmPower{};  // no energy: the -300 dBm sentinel
  }
  return rf::DbmPower::from_milliwatts(total_mw) - extra_loss;
}

rf::DbmPower received_power(const RadioNode& tx, const RadioNode& rx,
                            std::span<const channel::Path> paths,
                            const LinkConfig& config) {
  std::vector<PathComponent> components;
  components.reserve(paths.size());
  for (const channel::Path& path : paths) {
    const rf::DbmPower path_power = tx.tx_power() - path.loss;
    const double amplitude = std::sqrt(path_power.milliwatts());
    const std::complex<double> g_tx =
        tx.response_toward(path.departure_azimuth);
    const std::complex<double> g_rx = rx.response_toward(path.arrival_azimuth);
    components.push_back({amplitude * g_tx * g_rx, path.length_m});
  }
  return wideband_power(components, config, config.implementation_loss);
}

rf::Decibels link_snr(const RadioNode& tx, const RadioNode& rx,
                      std::span<const channel::Path> paths,
                      const LinkConfig& config) {
  return received_power(tx, rx, paths, config) - link_noise_floor(config);
}

}  // namespace movr::phy
