// Exhaustive beam sweeps.
//
// Section 3's NLOS experiment: "we try every combination of beam angle for
// both transmitter and receiver antennas, with 1 degree increments" and take
// the best non-line-of-sight SNR. These helpers run that sweep for any pair
// of radios, optionally excluding the LOS direction.
#pragma once

#include <span>
#include <vector>

#include <channel/path.hpp>
#include <phy/link.hpp>
#include <phy/radio.hpp>

namespace movr::phy {

struct SweepResult {
  double tx_local_angle{0.0};  // best TX steering, array-local radians
  double rx_local_angle{0.0};
  rf::Decibels snr{-300.0};
  int combinations_tried{0};
};

/// Sweeps both radios over their codebooks and returns the best SNR.
/// Steering of both radios is left at the winning setting.
SweepResult sweep_best_beams(RadioNode& tx, RadioNode& rx,
                             std::span<const channel::Path> paths,
                             const LinkConfig& config,
                             std::span<const double> tx_codebook,
                             std::span<const double> rx_codebook);

/// Same sweep, but only over `paths` with at least one bounce — the paper's
/// "Opt. NLOS" scenario (the blocked LOS direction is ignored).
SweepResult sweep_best_beams_nlos(RadioNode& tx, RadioNode& rx,
                                  std::span<const channel::Path> paths,
                                  const LinkConfig& config,
                                  std::span<const double> tx_codebook,
                                  std::span<const double> rx_codebook);

struct FullSweepResult {
  double tx_orientation{0.0};  // winning mount orientation (global radians)
  double rx_orientation{0.0};
  double tx_local_angle{0.0};
  double rx_local_angle{0.0};
  rf::Decibels snr{-300.0};
  int combinations_tried{0};
};

/// The paper's Section 3 sweep: "every combination of beam angle for both
/// transmitter and receiver antennas ... in all directions". A single ULA
/// face only covers a ~160 degree sector, so full-azimuth coverage re-mounts
/// each array in `faces` orientations around the circle and sweeps the
/// sector within each. Runs coarse (coarse_step_deg) over all face pairs,
/// then refines +/- coarse_step at fine_step_deg around the winner. When
/// `nlos_only`, LOS paths are excluded (the Opt. NLOS scenario).
/// Leaves both radios mounted and steered at the winning setting.
FullSweepResult sweep_all_directions(RadioNode& tx, RadioNode& rx,
                                     std::span<const channel::Path> paths,
                                     const LinkConfig& config, bool nlos_only,
                                     double coarse_step_deg = 3.0,
                                     double fine_step_deg = 1.0,
                                     int faces = 4);

}  // namespace movr::phy
