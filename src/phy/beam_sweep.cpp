#include <phy/beam_sweep.hpp>

#include <algorithm>

#include <geom/angle.hpp>
#include <rf/codebook.hpp>

namespace movr::phy {

namespace {

SweepResult sweep(RadioNode& tx, RadioNode& rx,
                  std::span<const channel::Path> paths,
                  const LinkConfig& config,
                  std::span<const double> tx_codebook,
                  std::span<const double> rx_codebook) {
  SweepResult best;
  for (const double tx_angle : tx_codebook) {
    tx.array().steer(tx_angle);
    for (const double rx_angle : rx_codebook) {
      rx.array().steer(rx_angle);
      const rf::Decibels snr = link_snr(tx, rx, paths, config);
      ++best.combinations_tried;
      if (snr > best.snr) {
        best.snr = snr;
        best.tx_local_angle = tx_angle;
        best.rx_local_angle = rx_angle;
      }
    }
  }
  tx.array().steer(best.tx_local_angle);
  rx.array().steer(best.rx_local_angle);
  return best;
}

}  // namespace

SweepResult sweep_best_beams(RadioNode& tx, RadioNode& rx,
                             std::span<const channel::Path> paths,
                             const LinkConfig& config,
                             std::span<const double> tx_codebook,
                             std::span<const double> rx_codebook) {
  return sweep(tx, rx, paths, config, tx_codebook, rx_codebook);
}

SweepResult sweep_best_beams_nlos(RadioNode& tx, RadioNode& rx,
                                  std::span<const channel::Path> paths,
                                  const LinkConfig& config,
                                  std::span<const double> tx_codebook,
                                  std::span<const double> rx_codebook) {
  std::vector<channel::Path> reflected;
  reflected.reserve(paths.size());
  std::copy_if(paths.begin(), paths.end(), std::back_inserter(reflected),
               [](const channel::Path& p) { return p.bounces > 0; });
  return sweep(tx, rx, reflected, config, tx_codebook, rx_codebook);
}

FullSweepResult sweep_all_directions(RadioNode& tx, RadioNode& rx,
                                     std::span<const channel::Path> paths,
                                     const LinkConfig& config, bool nlos_only,
                                     double coarse_step_deg,
                                     double fine_step_deg, int faces) {
  std::vector<channel::Path> usable;
  usable.reserve(paths.size());
  std::copy_if(paths.begin(), paths.end(), std::back_inserter(usable),
               [nlos_only](const channel::Path& p) {
                 return !nlos_only || p.bounces > 0;
               });

  const double tx_home = tx.orientation();
  const double rx_home = rx.orientation();
  FullSweepResult best;

  const auto scan = [&](double tx_orient, double rx_orient,
                        std::span<const double> tx_angles,
                        std::span<const double> rx_angles) {
    tx.set_orientation(tx_orient);
    rx.set_orientation(rx_orient);
    for (const double ta : tx_angles) {
      tx.array().steer(ta);
      for (const double ra : rx_angles) {
        rx.array().steer(ra);
        const rf::Decibels snr = link_snr(tx, rx, usable, config);
        ++best.combinations_tried;
        if (snr > best.snr) {
          best.snr = snr;
          best.tx_orientation = tx_orient;
          best.rx_orientation = rx_orient;
          best.tx_local_angle = ta;
          best.rx_local_angle = ra;
        }
      }
    }
  };

  // Coarse pass over every face pair.
  const auto coarse = rf::make_codebook(movr::geom::deg_to_rad(10.0),
                                        movr::geom::deg_to_rad(170.0),
                                        movr::geom::deg_to_rad(coarse_step_deg));
  for (int fi = 0; fi < faces; ++fi) {
    const double tx_orient =
        tx_home + movr::geom::kTwoPi * fi / static_cast<double>(faces);
    for (int fj = 0; fj < faces; ++fj) {
      const double rx_orient =
          rx_home + movr::geom::kTwoPi * fj / static_cast<double>(faces);
      scan(tx_orient, rx_orient, coarse, coarse);
    }
  }

  // Fine pass around the coarse winner.
  const double span = movr::geom::deg_to_rad(coarse_step_deg);
  const double step = movr::geom::deg_to_rad(fine_step_deg);
  const auto fine_tx =
      rf::make_codebook(best.tx_local_angle - span, best.tx_local_angle + span,
                        step);
  const auto fine_rx =
      rf::make_codebook(best.rx_local_angle - span, best.rx_local_angle + span,
                        step);
  scan(best.tx_orientation, best.rx_orientation, fine_tx, fine_rx);

  tx.set_orientation(best.tx_orientation);
  rx.set_orientation(best.rx_orientation);
  tx.array().steer(best.tx_local_angle);
  rx.array().steer(best.rx_local_angle);
  return best;
}

}  // namespace movr::phy
