// The units of the transport data-plane: video frames and the MPDUs they
// are split into.
//
// A frame is born at the encoder with a capture time and dies at the
// display: either released on time at its display deadline, released late
// (a glitch the player saw), or dropped on the way (queue overflow, gone
// stale in the queue, or out of retransmission budget). Packets carry the
// frame identity plus enough framing (seq / frame_packets) for the
// headset-side jitter buffer to reassemble, deduplicate and account.
#pragma once

#include <cstdint>

#include <sim/time.hpp>

namespace movr::net {

/// One encoded video frame as the encoder hands it to the transport.
struct Frame {
  std::uint64_t id{0};
  sim::TimePoint capture{};   // when the encoder emitted it
  sim::TimePoint deadline{};  // display deadline (capture + latency budget)
  std::uint64_t bytes{0};     // encoded size
  bool keyframe{false};       // I-frame (bigger, same deadline)
};

/// One MPDU of a frame, sized by the packetizer for the current MCS.
struct Packet {
  std::uint64_t frame_id{0};
  std::uint32_t seq{0};            // position within the frame, 0-based
  std::uint32_t frame_packets{0};  // total MPDUs in this frame
  std::uint32_t payload_bytes{0};
  sim::TimePoint capture{};   // the frame's capture time
  sim::TimePoint deadline{};  // the frame's display deadline
};

}  // namespace movr::net
