// The units of the transport data-plane: video frames and the MPDUs they
// are split into.
//
// A frame is born at the encoder with a capture time and dies at the
// display: either released on time at its display deadline, released late
// (a glitch the player saw), or dropped on the way (queue overflow, gone
// stale in the queue, or out of retransmission budget). Packets carry the
// frame identity plus enough framing (seq / frame_packets) for the
// headset-side jitter buffer to reassemble, deduplicate and account.
#pragma once

#include <cstdint>

#include <sim/time.hpp>

namespace movr::net {

/// One encoded video frame as the encoder hands it to the transport.
struct Frame {
  std::uint64_t id{0};
  sim::TimePoint capture{};   // when the encoder emitted it
  sim::TimePoint deadline{};  // display deadline (capture + latency budget)
  std::uint64_t bytes{0};     // encoded size
  bool keyframe{false};       // I-frame (bigger, same deadline)
};

/// One MPDU of a frame, sized by the packetizer for the current MCS.
///
/// FEC framing (net/fec.hpp): when the frame is protected, every MPDU —
/// data and parity — carries `fec_groups` (interleaved XOR groups in the
/// frame) and `fec_group` (this MPDU's group). Data MPDU `seq` belongs to
/// group `seq % fec_groups`; a parity MPDU XORs its whole group, so the
/// receiver can reconstruct any single missing member. `fec_groups == 0`
/// means the frame is unprotected (legacy framing, bit-identical).
struct Packet {
  std::uint64_t frame_id{0};
  std::uint32_t seq{0};            // position within the frame, 0-based
  std::uint32_t frame_packets{0};  // total *data* MPDUs in this frame
  std::uint32_t payload_bytes{0};
  sim::TimePoint capture{};   // the frame's capture time
  sim::TimePoint deadline{};  // the frame's display deadline
  bool keyframe{false};       // the frame's class (deeper FEC for I-frames)
  bool parity{false};         // XOR-parity MPDU appended by the FEC layer
  std::uint32_t fec_group{0};   // interleave group of this MPDU
  std::uint32_t fec_groups{0};  // groups in this frame; 0 = unprotected
};

}  // namespace movr::net
