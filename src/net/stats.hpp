// Per-frame latency accounting and the transport's metric surface.
//
// The dual-beam / mmWave-VR measurement literature evaluates robustness in
// frame-latency CDFs, not mean SNR — so the transport's primary product is
// the per-frame end-to-end latency distribution, plus the counters that
// explain its tail (deadline misses, retransmissions, queue drops).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace movr::net {

/// Fixed-bin histogram of frame latencies in milliseconds.
struct LatencyHistogram {
  double bin_ms{0.5};
  /// bins[i] counts latencies in [i * bin_ms, (i+1) * bin_ms).
  std::vector<std::uint64_t> bins;
  std::uint64_t overflow{0};

  LatencyHistogram() : bins(40, 0) {}

  void add(double ms) {
    const auto idx = static_cast<std::size_t>(ms / bin_ms);
    if (ms < 0.0 || idx >= bins.size()) {
      ++overflow;
    } else {
      ++bins[idx];
    }
  }

  std::uint64_t total() const {
    std::uint64_t n = overflow;
    for (const std::uint64_t b : bins) {
      n += b;
    }
    return n;
  }
};

struct TransportMetrics {
  // Frame ledger: every emitted frame ends in exactly one bucket.
  std::uint64_t frames_emitted{0};
  std::uint64_t frames_on_time{0};       // released at their deadline
  std::uint64_t frames_late{0};          // completed after their deadline
  std::uint64_t frames_dropped_queue{0}; // shed by the TX queue
  std::uint64_t frames_dropped_arq{0};   // retransmission budget exhausted
  std::uint64_t frames_missed{0};        // deadline passed, still in flight
  std::uint64_t frames_unresolved{0};    // session ended mid-flight
  /// Frames the display asked for and did not get: late + dropped.
  std::uint64_t deadline_misses{0};

  // Packet ledger (the conservation invariant).
  std::uint64_t packets_enqueued{0};
  std::uint64_t packets_delivered{0};  // unique arrivals at the jitter buffer
  std::uint64_t bytes_delivered{0};    // payload bytes of those arrivals
  std::uint64_t packets_dropped{0};    // queue sheds + ARQ abandonments
  std::uint64_t packets_in_flight{0};  // queued / on air / awaiting ack
  std::uint64_t retransmits{0};
  std::uint64_t duplicates{0};  // delivered-again copies (lost acks)

  // Speculative dual-path reception (armed during forecast risk windows;
  // all zero otherwise). Each armed data MPDU gets one extra copy on the
  // alternate beam, resolved atomically with the primary transmission.
  std::uint64_t speculative_enqueued{0};  // alternate-beam copies sent
  std::uint64_t speculative_dups{0};      // copies redundant at the receiver
  std::uint64_t speculative_drops{0};     // copies lost on the alternate beam
  /// Armed MPDUs that arrived *only* via the alternate beam — the copies
  /// speculation actually saved from the primary-path burst.
  std::uint64_t speculative_saves{0};

  // FEC layer (net/fec.hpp); all zero while the layer is disabled.
  std::uint64_t parity_enqueued{0};   // parity MPDUs the encoder appended
  std::uint64_t parity_delivered{0};  // unique parity arrivals
  /// Data MPDUs the receiver rebuilt from parity (receiver's view; a
  /// rebuilt MPDU whose frame later dropped stays in the dropped bucket).
  std::uint64_t packets_recovered{0};
  /// Rebuilt MPDUs credited to the ledger's recovered-as-delivered bucket.
  std::uint64_t packets_recovered_delivered{0};
  std::uint64_t fec_frames_protected{0};
  std::uint64_t fec_enables{0};  // adaptive controller hysteresis turn-ons
  double fec_loss_estimate{0.0};  // controller's final loss EWMA
  double fec_burst_estimate_mpdus{0.0};  // controller's final burst estimate

  // Multi-user arena plumbing (ChannelState::airtime_share /
  // ::interference_db); at their defaults when the session ran alone.
  double airtime_share_min{1.0};    // tightest share the coordinator imposed
  double interference_db_max{0.0};  // worst per-tick SNR penalty
  std::uint64_t interfered_ticks{0};  // ticks with a nonzero penalty

  // Queue backpressure.
  std::size_t queue_max_depth_frames{0};
  std::uint64_t queue_max_depth_bytes{0};

  /// Backing storage owned by the transport's pools, rings and scratch
  /// buffers at session end (bytes). Monotone across back-to-back sessions
  /// on one transport: once warmed, the steady-state tick path allocates
  /// nothing, so this is the arena's high-water mark.
  std::size_t arena_high_water_bytes{0};

  /// End-to-end latency of completed frames; frames that never completed
  /// count as +infinity in the percentiles below.
  LatencyHistogram histogram;
  double p50_ms{0.0};
  double p95_ms{0.0};
  double p99_ms{0.0};

  /// delivered + dropped + recovered-as-delivered + speculative-dup +
  /// in-flight == enqueued — the packet ledger closes (the recovered bucket
  /// is empty without FEC, the speculative bucket without risk windows).
  /// `packets_enqueued` / `packets_dropped` already include the speculative
  /// copies sent / lost.
  bool conserved() const {
    return packets_enqueued == packets_delivered + packets_dropped +
                                   packets_recovered_delivered +
                                   speculative_dups + packets_in_flight;
  }

  double deadline_miss_fraction() const {
    return frames_emitted == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(frames_emitted);
  }

  static constexpr double kNeverMs = std::numeric_limits<double>::infinity();
};

}  // namespace movr::net
