#include <net/transport.hpp>

#include <algorithm>
#include <cmath>

#include <phy/airtime.hpp>

namespace movr::net {

namespace {

double percentile_ms(std::vector<double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  if (std::isinf(sorted[hi])) {
    // Interpolating toward infinity is infinity unless we are exactly on
    // the finite lower sample.
    return frac == 0.0 ? sorted[lo] : sorted[hi];
  }
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Transport::Transport(sim::Simulator& simulator, TransportConfig config)
    : simulator_{simulator},
      config_{config},
      source_{config.source},
      packetizer_{config.packetizer},
      queue_{config.queue},
      arq_{config.arq},
      rng_{config.seed} {}

bool Transport::coin(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  if (probability >= 1.0) {
    return true;
  }
  std::uniform_real_distribution<double> u{0.0, 1.0};
  return u(rng_) < probability;
}

sim::Duration Transport::data_airtime(const Packet& packet,
                                      const phy::McsEntry& mcs) const {
  phy::AirtimeConfig airtime;
  airtime.ampdu_bytes = static_cast<double>(packet.payload_bytes);
  // The ack is modelled separately (ack_delay + loss coin), not as airtime.
  airtime.ack_exchange = sim::Duration::zero();
  return phy::ppdu_airtime(mcs, airtime);
}

void Transport::on_frame(ChannelState channel) {
  channel_ = channel;
  const sim::TimePoint now = simulator_.now();

  Frame frame = source_.next(now);
  FrameOutcome outcome;
  outcome.id = frame.id;
  outcome.capture = frame.capture;
  outcomes_.push_back(outcome);
  simulator_.at(frame.deadline,
                [this, id = frame.id] { on_display_deadline(id); });

  // Packetize for the MCS in force; when the link is down, size for the
  // most robust MCS — the queue holds the frame either way.
  const phy::McsEntry& sizing_mcs =
      channel_.mcs != nullptr ? *channel_.mcs : phy::mcs_table().front();
  const std::vector<Packet> packets = packetizer_.split(frame, sizing_mcs);

  std::vector<std::uint64_t> shed;
  queue_.push(packets, shed);
  for (const std::uint64_t id : shed) {
    drop_frame(id, FrameOutcome::Kind::kDroppedQueue);
  }
  pump();
}

void Transport::pump() {
  std::vector<std::uint64_t> stale;
  queue_.drop_stale(simulator_.now(), stale);
  for (const std::uint64_t id : stale) {
    drop_frame(id, FrameOutcome::Kind::kDroppedQueue);
  }

  if (air_busy_ || channel_.mcs == nullptr || !arq_.can_send()) {
    return;
  }

  Packet packet;
  bool is_retransmit = false;
  bool already_delivered = false;
  if (!retx_.empty()) {
    packet = retx_.front().packet;
    already_delivered = retx_.front().delivered;
    if (!already_delivered) {
      --retx_undelivered_;
    }
    retx_.pop_front();
    is_retransmit = true;
  } else if (queue_.front() != nullptr) {
    packet = queue_.pop();
  } else {
    return;
  }

  const bool counted = !already_delivered;
  if (counted) {
    ++unacked_undelivered_;
  }
  arq_.start(packet, is_retransmit);
  air_busy_ = true;
  const double loss = channel_.loss();
  simulator_.after(data_airtime(packet, *channel_.mcs),
                   [this, packet, loss, counted] {
                     on_data_done(packet, loss, counted);
                   });
}

void Transport::on_data_done(const Packet& packet, double loss, bool counted) {
  air_busy_ = false;
  const bool data_lost = coin(loss);
  bool still_counted = counted;
  if (!data_lost) {
    if (still_counted) {
      --unacked_undelivered_;
      still_counted = false;
    }
    jitter_.on_packet(packet, simulator_.now());
    if (jitter_.is_complete(packet.frame_id)) {
      on_frame_completed(packet.frame_id);
    }
  }
  const bool ack_lost =
      !data_lost && coin(loss * config_.ack_loss_factor);
  simulator_.after(config_.ack_delay,
                   [this, packet, data_lost, ack_lost, still_counted] {
                     on_ack(packet, data_lost, ack_lost, still_counted);
                   });
  pump();
}

void Transport::on_ack(const Packet& packet, bool data_lost, bool ack_lost,
                       bool counted) {
  switch (arq_.resolve(packet, data_lost, ack_lost)) {
    case Arq::Verdict::kAcked:
      break;
    case Arq::Verdict::kRetransmit: {
      RetxEntry entry;
      entry.packet = packet;
      // `counted` is true only while no copy has reached the receiver, so
      // its negation covers both the lost-ack case and a lost re-send of a
      // packet some earlier copy already delivered.
      entry.delivered = !counted;
      if (counted) {
        --unacked_undelivered_;
        ++retx_undelivered_;
      }
      retx_.push_back(entry);
      break;
    }
    case Arq::Verdict::kAbandonFrame:
      if (counted) {
        --unacked_undelivered_;
        ++arq_packet_drops_;
      }
      drop_frame(packet.frame_id, FrameOutcome::Kind::kDroppedArq);
      break;
  }
  pump();
}

void Transport::drop_frame(std::uint64_t frame_id, FrameOutcome::Kind kind) {
  queue_.purge_frame(frame_id);
  for (auto it = retx_.begin(); it != retx_.end();) {
    if (it->packet.frame_id == frame_id) {
      if (!it->delivered) {
        --retx_undelivered_;
        ++retx_purge_drops_;
      }
      it = retx_.erase(it);
    } else {
      ++it;
    }
  }
  arq_.abandon_frame(frame_id);
  FrameOutcome& outcome = outcomes_[frame_id];
  if (outcome.kind == FrameOutcome::Kind::kPending ||
      outcome.kind == FrameOutcome::Kind::kMiss) {
    outcome.kind = kind;
  }
}

void Transport::on_frame_completed(std::uint64_t frame_id) {
  FrameOutcome& outcome = outcomes_[frame_id];
  const auto latency = jitter_.completion_latency(frame_id);
  if (latency.has_value()) {
    outcome.latency_ms = sim::to_milliseconds(*latency);
  }
  if (outcome.kind == FrameOutcome::Kind::kMiss) {
    outcome.kind = FrameOutcome::Kind::kLate;
  }
  arq_.forget_frame(frame_id);
}

void Transport::on_display_deadline(std::uint64_t frame_id) {
  const JitterBuffer::Deadline verdict =
      jitter_.on_deadline(frame_id, simulator_.now());
  FrameOutcome& outcome = outcomes_[frame_id];
  if (verdict == JitterBuffer::Deadline::kReleasedOnTime) {
    outcome.kind = FrameOutcome::Kind::kOnTime;
  } else if (verdict == JitterBuffer::Deadline::kMiss &&
             outcome.kind == FrameOutcome::Kind::kPending) {
    outcome.kind = FrameOutcome::Kind::kMiss;
  }
  pump();
}

std::uint64_t Transport::packets_enqueued() const {
  return queue_.counters().packets_enqueued;
}

std::uint64_t Transport::packets_delivered() const {
  return jitter_.counters().packets_received;
}

std::uint64_t Transport::packets_dropped() const {
  const TxQueue::Counters& q = queue_.counters();
  return q.packets_dropped_stale + q.packets_dropped_full + q.packets_purged +
         arq_packet_drops_ + retx_purge_drops_;
}

std::uint64_t Transport::packets_in_flight() const {
  return queue_.depth_packets() + retx_undelivered_ + unacked_undelivered_;
}

void Transport::finalize(sim::TimePoint end) {
  (void)end;
  metrics_ = TransportMetrics{};
  metrics_.frames_emitted = outcomes_.size();

  std::vector<double> latencies;
  latencies.reserve(outcomes_.size());
  for (FrameOutcome& outcome : outcomes_) {
    if (outcome.kind == FrameOutcome::Kind::kPending) {
      outcome.kind = jitter_.is_complete(outcome.id)
                         ? FrameOutcome::Kind::kOnTime
                         : FrameOutcome::Kind::kUnresolved;
    }
    switch (outcome.kind) {
      case FrameOutcome::Kind::kOnTime:
        ++metrics_.frames_on_time;
        break;
      case FrameOutcome::Kind::kLate:
        ++metrics_.frames_late;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kMiss:
        ++metrics_.frames_missed;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kDroppedQueue:
        ++metrics_.frames_dropped_queue;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kDroppedArq:
        ++metrics_.frames_dropped_arq;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kUnresolved:
        ++metrics_.frames_unresolved;
        break;
      case FrameOutcome::Kind::kPending:
        break;  // unreachable
    }
    if (std::isfinite(outcome.latency_ms)) {
      metrics_.histogram.add(outcome.latency_ms);
    }
    latencies.push_back(outcome.latency_ms);
  }

  std::sort(latencies.begin(), latencies.end());
  metrics_.p50_ms = percentile_ms(latencies, 0.50);
  metrics_.p95_ms = percentile_ms(latencies, 0.95);
  metrics_.p99_ms = percentile_ms(latencies, 0.99);

  metrics_.packets_enqueued = packets_enqueued();
  metrics_.packets_delivered = packets_delivered();
  metrics_.bytes_delivered = jitter_.counters().bytes_received;
  metrics_.packets_dropped = packets_dropped();
  metrics_.packets_in_flight = packets_in_flight();
  metrics_.retransmits = arq_.counters().retransmits;
  metrics_.duplicates = jitter_.counters().duplicates;
  metrics_.queue_max_depth_frames = queue_.counters().max_depth_frames;
  metrics_.queue_max_depth_bytes = queue_.counters().max_depth_bytes;
}

}  // namespace movr::net
