#include <net/transport.hpp>

#include <algorithm>
#include <cmath>

#include <phy/airtime.hpp>
#include <sim/rng.hpp>

namespace movr::net {

namespace {

double percentile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  if (std::isinf(sorted[hi])) {
    // Interpolating toward infinity is infinity unless we are exactly on
    // the finite lower sample.
    return frac == 0.0 ? sorted[lo] : sorted[hi];
  }
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Transport::Transport(sim::Simulator& simulator, TransportConfig config)
    : simulator_{simulator},
      config_{config},
      source_{config.source},
      packetizer_{config.packetizer},
      queue_{config.queue},
      arq_{config.arq},
      controller_{config.redundancy},
      rng_{config.seed},
      ack_rng_{derive_stream(config.seed, "net.ack")},
      parity_rng_{derive_stream(config.seed, "net.fec")},
      spec_rng_{derive_stream(config.seed, "net.spec")} {}

std::mt19937_64 Transport::derive_stream(std::uint64_t seed,
                                         std::string_view name) {
  return sim::RngRegistry{seed}.stream(name);
}

bool Transport::coin(std::mt19937_64& rng, double probability) {
  if (probability <= 0.0) {
    return false;
  }
  if (probability >= 1.0) {
    return true;
  }
  std::uniform_real_distribution<double> u{0.0, 1.0};
  return u(rng) < probability;
}

sim::Duration Transport::data_airtime(const Packet& packet,
                                      const phy::McsEntry& mcs) const {
  phy::AirtimeConfig airtime;
  airtime.ampdu_bytes = static_cast<double>(packet.payload_bytes);
  // The ack is modelled separately (ack_delay + loss coin), not as airtime.
  airtime.ack_exchange = sim::Duration::zero();
  return phy::ppdu_airtime(mcs, airtime);
}

void Transport::on_frame(ChannelState channel) {
  channel_ = channel;
  if (channel_.airtime_share < airtime_share_min_) {
    airtime_share_min_ = channel_.airtime_share;
  }
  if (channel_.interference_db > 0.0) {
    ++interfered_ticks_;
    if (channel_.interference_db > interference_db_max_) {
      interference_db_max_ = channel_.interference_db;
    }
  }
  const sim::TimePoint now = simulator_.now();

  Frame frame = source_.next(now);
  FrameOutcome outcome;
  outcome.id = frame.id;
  outcome.capture = frame.capture;
  outcomes_.push_back(outcome);
  simulator_.at(frame.deadline,
                [this, id = frame.id] { on_display_deadline(id); });

  // Packetize for the MCS in force; when the link is down, size for the
  // most robust MCS — the queue holds the frame either way.
  const phy::McsEntry& sizing_mcs =
      channel_.mcs != nullptr ? *channel_.mcs : phy::mcs_table().front();
  packetizer_.split_into(frame, sizing_mcs, packet_scratch_);

  FecParams fec = config_.fec;
  if (config_.adaptive_fec) {
    controller_.on_tick(channel_.stressed, channel_.predicted_stress);
    fec = controller_.plan(frame.keyframe);
    arq_.set_frame_budget(frame.id, controller_.retx_budget(frame.keyframe));
  }
  fec_.protect(packet_scratch_, fec);

  shed_scratch_.clear();
  queue_.push(packet_scratch_, shed_scratch_);
  for (const std::uint64_t id : shed_scratch_) {
    drop_frame(id, FrameOutcome::Kind::kDroppedQueue);
  }
  pump();
}

void Transport::pump() {
  stale_scratch_.clear();
  queue_.drop_stale(simulator_.now(), stale_scratch_);
  for (const std::uint64_t id : stale_scratch_) {
    drop_frame(id, FrameOutcome::Kind::kDroppedQueue);
  }

  if (air_busy_ || channel_.mcs == nullptr || !arq_.can_send()) {
    return;
  }

  Packet packet;
  bool is_retransmit = false;
  bool already_delivered = false;
  bool serve_retx = !retx_.empty();
  if (serve_retx && retx_.front().packet.fec_groups > 0) {
    const Packet* head = queue_.front();
    if (head != nullptr &&
        head->frame_id == retx_.front().packet.frame_id) {
      // FEC-first: the rest of this frame — its parity included — is still
      // queued, and a parity MPDU may repair this hole for free. Hold the
      // retransmit until the frame has flushed; ARQ stays the backstop for
      // holes parity cannot close.
      serve_retx = false;
    }
  }
  if (serve_retx) {
    packet = retx_.front().packet;
    already_delivered = retx_.front().delivered;
    if (!already_delivered) {
      --retx_undelivered_;
    }
    retx_.erase(retx_.begin());
    is_retransmit = true;
  } else if (queue_.front() != nullptr) {
    packet = queue_.pop();
  } else {
    return;
  }

  const bool counted = !already_delivered;
  if (counted) {
    ++unacked_undelivered_;
  }
  arq_.start(packet, is_retransmit);
  air_busy_ = true;
  const double loss = channel_.loss();
  // Speculation is armed per transmission, at send time: only data MPDUs
  // (parity is expendable — a second beam's worth of it is pure waste).
  const bool speculative = channel_.speculative && !packet.parity;
  const double alt_loss = channel_.alt_loss;
  // A fractional airtime share stretches the MPDU's wall-clock occupancy:
  // the other users' interleaved slots sit between our symbols. share ==
  // 1.0 skips the arithmetic entirely so a single-user run stays
  // bit-identical.
  sim::Duration air = data_airtime(packet, *channel_.mcs);
  if (channel_.airtime_share < 1.0) {
    const double share = std::max(channel_.airtime_share, 1e-3);
    air = sim::Duration{static_cast<sim::Duration::rep>(
        std::llround(static_cast<double>(air.count()) / share))};
  }
  simulator_.after(air,
                   [this, packet, loss, counted, speculative, alt_loss] {
                     on_data_done(packet, loss, counted, speculative,
                                  alt_loss);
                   });
}

void Transport::on_data_done(const Packet& packet, double loss, bool counted,
                             bool speculative, double alt_loss) {
  air_busy_ = false;
  // Parity coins come from their own stream so enabling FEC leaves the
  // data-loss trajectory of a seeded run untouched.
  const bool data_lost = coin(packet.parity ? parity_rng_ : rng_, loss);
  if (config_.adaptive_fec) {
    // Raw primary-path outcome: the controller's channel estimate stays
    // honest even when a speculative copy rescues the MPDU.
    controller_.on_transmission(data_lost);
  }
  bool spec_arrived = false;
  if (speculative) {
    // The alternate-beam copy flies and resolves in the same event as the
    // primary (it shares the airtime slot), so it is never in flight and
    // the extended ledger closes at every instant.
    ++speculative_enqueued_;
    spec_arrived = !coin(spec_rng_, alt_loss);
  }
  // The MPDU reached the receiver if either beam carried it.
  const bool effective_lost = data_lost && !spec_arrived;
  bool still_counted = counted;
  if (!effective_lost) {
    if (still_counted) {
      --unacked_undelivered_;
      still_counted = false;
    }
    const JitterBuffer::Arrival arrival =
        jitter_.on_packet(packet, simulator_.now());
    if (counted && !arrival.fresh && !packet.parity) {
      // The air copy of a data MPDU the receiver had already rebuilt from
      // parity: consume the pending recovery credit. A missing credit means
      // drop_frame wrote it off while this copy was on air — the late
      // duplicate lands in the dropped bucket (dropped wins).
      if (recovered_take(packet.frame_id, packet.seq)) {
        ++recovered_credited_;
      } else {
        ++late_dup_drops_;
      }
    }
    if (arrival.recovered.has_value()) {
      on_recovered(packet.frame_id, *arrival.recovered);
    }
    if (jitter_.is_complete(packet.frame_id)) {
      on_frame_completed(packet.frame_id);
    }
    if (speculative) {
      if (spec_arrived) {
        if (!data_lost) {
          // Both beams delivered: the alternate copy is a receiver-side
          // duplicate the jitter buffer dedups by sequence number.
          (void)jitter_.on_packet(packet, simulator_.now());
        } else {
          // Primary burst ate the MPDU; only the speculative copy got
          // through. The arrival above WAS that copy — the redundant one,
          // ledger-wise, is the lost primary's slot it stands in for.
          ++speculative_saves_;
        }
        ++speculative_dups_;
      } else {
        ++speculative_loss_drops_;
      }
    }
  } else if (speculative) {
    ++speculative_loss_drops_;  // both beams lost the MPDU
  }
  // Ack semantics follow the receiver's truth: a speculative arrival is
  // block-acked like any other, so ARQ never re-sends what the alternate
  // beam already delivered.
  const bool ack_lost =
      !effective_lost && coin(ack_rng_, loss * config_.ack_loss_factor);
  simulator_.after(config_.ack_delay,
                   [this, packet, effective_lost, ack_lost, still_counted] {
                     on_ack(packet, effective_lost, ack_lost, still_counted);
                   });
  pump();
}

void Transport::on_recovered(std::uint64_t frame_id, std::uint32_t seq) {
  // The receiver now holds `seq` without a counted arrival. If the
  // sender's copy is waiting in the retransmit line, the next block-ack
  // advertises the recovery and the retransmit is cancelled — the credit
  // is taken immediately. Otherwise remember the debt: it is settled when
  // the copy's transmission resolves (duplicate arrival or block-acked
  // loss) or written off when the frame drops.
  for (auto it = retx_.begin(); it != retx_.end(); ++it) {
    if (it->packet.frame_id == frame_id && it->packet.seq == seq &&
        !it->packet.parity && !it->delivered) {
      --retx_undelivered_;
      ++recovered_credited_;
      retx_.erase(it);
      return;
    }
  }
  const std::pair<std::uint64_t, std::uint32_t> key{frame_id, seq};
  const auto it = std::lower_bound(recovered_.begin(), recovered_.end(), key);
  if (it == recovered_.end() || *it != key) {
    recovered_.insert(it, key);
  }
}

bool Transport::recovered_take(std::uint64_t frame_id, std::uint32_t seq) {
  const std::pair<std::uint64_t, std::uint32_t> key{frame_id, seq};
  const auto it = std::lower_bound(recovered_.begin(), recovered_.end(), key);
  if (it == recovered_.end() || *it != key) {
    return false;
  }
  recovered_.erase(it);
  return true;
}

void Transport::on_ack(const Packet& packet, bool data_lost, bool ack_lost,
                       bool counted) {
  if (packet.parity && (data_lost || ack_lost)) {
    // Parity is expendable: losing one only costs its group the shield,
    // and retransmitting it would burn ARQ budget the data may need. A
    // copy lost on air lands in the dropped bucket; a delivered copy whose
    // ack vanished is already counted and just needs the line cleared.
    if (counted) {
      --unacked_undelivered_;
      ++parity_loss_drops_;
    }
    arq_.forgo(packet);
    pump();
    return;
  }
  if (data_lost && counted && !packet.parity &&
      recovered_take(packet.frame_id, packet.seq)) {
    // The MPDU was lost on air, but the receiver rebuilt it from parity in
    // the meantime and its block-ack advertises the recovery — no
    // retransmission needed; consume the credit instead.
    --unacked_undelivered_;
    ++recovered_credited_;
    arq_.resolve(packet, false, false);
    pump();
    return;
  }
  switch (arq_.resolve(packet, data_lost, ack_lost)) {
    case Arq::Verdict::kAcked:
      break;
    case Arq::Verdict::kRetransmit: {
      RetxEntry entry;
      entry.packet = packet;
      // `counted` is true only while no copy has reached the receiver, so
      // its negation covers both the lost-ack case and a lost re-send of a
      // packet some earlier copy already delivered.
      entry.delivered = !counted;
      if (counted) {
        --unacked_undelivered_;
        ++retx_undelivered_;
      }
      retx_.push_back(entry);
      break;
    }
    case Arq::Verdict::kAbandonFrame:
      if (counted) {
        --unacked_undelivered_;
        ++arq_packet_drops_;
      }
      drop_frame(packet.frame_id, FrameOutcome::Kind::kDroppedArq);
      break;
  }
  pump();
}

void Transport::drop_frame(std::uint64_t frame_id, FrameOutcome::Kind kind) {
  queue_.purge_frame(frame_id);
  for (auto it = retx_.begin(); it != retx_.end();) {
    if (it->packet.frame_id == frame_id) {
      if (!it->delivered) {
        --retx_undelivered_;
        ++retx_purge_drops_;
      }
      it = retx_.erase(it);
    } else {
      ++it;
    }
  }
  arq_.abandon_frame(frame_id);
  // Pending recovery credits for this frame are written off: the physical
  // copies land in the dropped bucket, which wins over recovery.
  recovered_.erase(
      std::lower_bound(recovered_.begin(), recovered_.end(),
                       std::pair<std::uint64_t, std::uint32_t>{frame_id, 0}),
      std::lower_bound(
          recovered_.begin(), recovered_.end(),
          std::pair<std::uint64_t, std::uint32_t>{frame_id + 1, 0}));
  FrameOutcome& outcome = outcomes_[frame_id];
  if (outcome.kind == FrameOutcome::Kind::kPending) {
    // kMiss frames were already counted at their deadline event.
    ++live_deadline_misses_;
  }
  if (outcome.kind == FrameOutcome::Kind::kPending ||
      outcome.kind == FrameOutcome::Kind::kMiss) {
    outcome.kind = kind;
  }
}

void Transport::on_frame_completed(std::uint64_t frame_id) {
  FrameOutcome& outcome = outcomes_[frame_id];
  const auto latency = jitter_.completion_latency(frame_id);
  if (latency.has_value()) {
    outcome.latency_ms = sim::to_milliseconds(*latency);
  }
  if (outcome.kind == FrameOutcome::Kind::kMiss) {
    outcome.kind = FrameOutcome::Kind::kLate;
  }
  arq_.forget_frame(frame_id);
}

void Transport::on_display_deadline(std::uint64_t frame_id) {
  const JitterBuffer::Deadline verdict =
      jitter_.on_deadline(frame_id, simulator_.now());
  FrameOutcome& outcome = outcomes_[frame_id];
  if (verdict == JitterBuffer::Deadline::kReleasedOnTime) {
    outcome.kind = FrameOutcome::Kind::kOnTime;
  } else if (verdict == JitterBuffer::Deadline::kMiss &&
             outcome.kind == FrameOutcome::Kind::kPending) {
    outcome.kind = FrameOutcome::Kind::kMiss;
    ++live_deadline_misses_;
  }
  pump();
}

std::uint64_t Transport::packets_enqueued() const {
  return queue_.counters().packets_enqueued + speculative_enqueued_;
}

std::uint64_t Transport::packets_delivered() const {
  return jitter_.counters().packets_received;
}

std::uint64_t Transport::packets_dropped() const {
  const TxQueue::Counters& q = queue_.counters();
  return q.packets_dropped_stale + q.packets_dropped_full + q.packets_purged +
         arq_packet_drops_ + retx_purge_drops_ + late_dup_drops_ +
         parity_loss_drops_ + speculative_loss_drops_;
}

std::uint64_t Transport::packets_in_flight() const {
  return queue_.depth_packets() + retx_undelivered_ + unacked_undelivered_;
}

void Transport::finalize(sim::TimePoint end) {
  (void)end;
  metrics_ = TransportMetrics{};
  metrics_.frames_emitted = outcomes_.size();

  std::vector<double>& latencies = latency_scratch_;
  latencies.clear();
  latencies.reserve(outcomes_.size());
  for (FrameOutcome& outcome : outcomes_) {
    if (outcome.kind == FrameOutcome::Kind::kPending) {
      outcome.kind = jitter_.is_complete(outcome.id)
                         ? FrameOutcome::Kind::kOnTime
                         : FrameOutcome::Kind::kUnresolved;
    }
    switch (outcome.kind) {
      case FrameOutcome::Kind::kOnTime:
        ++metrics_.frames_on_time;
        break;
      case FrameOutcome::Kind::kLate:
        ++metrics_.frames_late;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kMiss:
        ++metrics_.frames_missed;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kDroppedQueue:
        ++metrics_.frames_dropped_queue;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kDroppedArq:
        ++metrics_.frames_dropped_arq;
        ++metrics_.deadline_misses;
        break;
      case FrameOutcome::Kind::kUnresolved:
        ++metrics_.frames_unresolved;
        break;
      case FrameOutcome::Kind::kPending:
        break;  // unreachable
    }
    if (std::isfinite(outcome.latency_ms)) {
      metrics_.histogram.add(outcome.latency_ms);
    }
    latencies.push_back(outcome.latency_ms);
  }

  std::sort(latencies.begin(), latencies.end());
  metrics_.p50_ms = percentile_ms(latencies, 0.50);
  metrics_.p95_ms = percentile_ms(latencies, 0.95);
  metrics_.p99_ms = percentile_ms(latencies, 0.99);

  metrics_.packets_enqueued = packets_enqueued();
  metrics_.packets_delivered = packets_delivered();
  metrics_.bytes_delivered = jitter_.counters().bytes_received;
  metrics_.packets_dropped = packets_dropped();
  metrics_.packets_in_flight = packets_in_flight();
  metrics_.retransmits = arq_.counters().retransmits;
  metrics_.duplicates = jitter_.counters().duplicates;
  metrics_.speculative_enqueued = speculative_enqueued_;
  metrics_.speculative_dups = speculative_dups_;
  metrics_.speculative_drops = speculative_loss_drops_;
  metrics_.speculative_saves = speculative_saves_;
  metrics_.queue_max_depth_frames = queue_.counters().max_depth_frames;
  metrics_.queue_max_depth_bytes = queue_.counters().max_depth_bytes;
  metrics_.airtime_share_min = airtime_share_min_;
  metrics_.interference_db_max = interference_db_max_;
  metrics_.interfered_ticks = interfered_ticks_;

  metrics_.parity_enqueued = fec_.counters().parity_packets;
  metrics_.parity_delivered = jitter_.counters().parity_received;
  metrics_.packets_recovered = jitter_.counters().packets_recovered;
  metrics_.packets_recovered_delivered = recovered_credited_;
  metrics_.fec_frames_protected = fec_.counters().frames_protected;
  metrics_.fec_enables = controller_.counters().enables;
  metrics_.fec_loss_estimate = controller_.loss_estimate();
  metrics_.fec_burst_estimate_mpdus =
      config_.adaptive_fec ? controller_.expected_burst_mpdus() : 0.0;
  metrics_.arena_high_water_bytes = arena_bytes();
}

std::size_t Transport::arena_bytes() const {
  return queue_.arena_bytes() + arq_.arena_bytes() + jitter_.arena_bytes() +
         fec_.arena_bytes() + retx_.capacity() * sizeof(RetxEntry) +
         recovered_.capacity() *
             sizeof(std::pair<std::uint64_t, std::uint32_t>) +
         outcomes_.capacity() * sizeof(FrameOutcome) +
         packet_scratch_.capacity() * sizeof(Packet) +
         shed_scratch_.capacity() * sizeof(std::uint64_t) +
         stale_scratch_.capacity() * sizeof(std::uint64_t) +
         latency_scratch_.capacity() * sizeof(double);
}

void Transport::reset() {
  source_.reset();
  queue_.reset();
  arq_.reset();
  jitter_.reset();
  fec_.reset();
  controller_.reset();
  rng_.seed(config_.seed);
  ack_rng_ = derive_stream(config_.seed, "net.ack");
  parity_rng_ = derive_stream(config_.seed, "net.fec");
  spec_rng_ = derive_stream(config_.seed, "net.spec");
  channel_ = ChannelState{};
  air_busy_ = false;
  retx_.clear();
  retx_undelivered_ = 0;
  unacked_undelivered_ = 0;
  arq_packet_drops_ = 0;
  retx_purge_drops_ = 0;
  late_dup_drops_ = 0;
  parity_loss_drops_ = 0;
  recovered_.clear();
  recovered_credited_ = 0;
  speculative_enqueued_ = 0;
  speculative_dups_ = 0;
  speculative_loss_drops_ = 0;
  speculative_saves_ = 0;
  live_deadline_misses_ = 0;
  airtime_share_min_ = 1.0;
  interference_db_max_ = 0.0;
  interfered_ticks_ = 0;
  outcomes_.clear();
  metrics_ = TransportMetrics{};
}

}  // namespace movr::net
