#include <net/packetizer.hpp>

#include <algorithm>

namespace movr::net {

std::uint32_t Packetizer::mpdu_bytes_for(const phy::McsEntry& mcs) const {
  const double bytes_on_air = mcs.rate_mbps * 1e6 *
                              sim::to_seconds(config_.target_mpdu_airtime) /
                              8.0;
  const double clamped =
      std::clamp(bytes_on_air, static_cast<double>(config_.min_mpdu_bytes),
                 static_cast<double>(config_.max_mpdu_bytes));
  return static_cast<std::uint32_t>(clamped);
}

std::vector<Packet> Packetizer::split(const Frame& frame,
                                      const phy::McsEntry& mcs) const {
  std::vector<Packet> packets;
  split_into(frame, mcs, packets);
  return packets;
}

void Packetizer::split_into(const Frame& frame, const phy::McsEntry& mcs,
                            std::vector<Packet>& out) const {
  const std::uint64_t mpdu = mpdu_bytes_for(mcs);
  const std::uint64_t count = std::max<std::uint64_t>(
      1, (frame.bytes + mpdu - 1) / mpdu);

  out.clear();
  out.reserve(count);
  std::uint64_t remaining = frame.bytes;
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    Packet p;
    p.frame_id = frame.id;
    p.seq = static_cast<std::uint32_t>(seq);
    p.frame_packets = static_cast<std::uint32_t>(count);
    p.payload_bytes = static_cast<std::uint32_t>(std::min(remaining, mpdu));
    p.capture = frame.capture;
    p.deadline = frame.deadline;
    p.keyframe = frame.keyframe;
    out.push_back(p);
    remaining -= p.payload_bytes;
  }
}

}  // namespace movr::net
