#include <net/jitter_buffer.hpp>

#include <stdexcept>

namespace movr::net {

bool JitterBuffer::on_packet(const Packet& packet, sim::TimePoint now) {
  FrameState& frame = frames_[packet.frame_id];
  if (frame.have.empty()) {
    frame.expected = packet.frame_packets;
    frame.have.assign(packet.frame_packets, false);
    frame.capture = packet.capture;
  }
  if (packet.seq >= frame.have.size() || frame.have[packet.seq]) {
    ++counters_.duplicates;
    return false;
  }
  frame.have[packet.seq] = true;
  ++frame.received;
  ++counters_.packets_received;
  counters_.bytes_received += packet.payload_bytes;
  if (frame.received == frame.expected && !frame.completed_at.has_value()) {
    frame.completed_at = now;
    ++counters_.frames_completed;
    if (frame.resolved) {
      ++counters_.late_completions;
    }
  }
  return true;
}

JitterBuffer::Deadline JitterBuffer::on_deadline(std::uint64_t frame_id,
                                                 sim::TimePoint now) {
  (void)now;
  FrameState& frame = frames_[frame_id];
  if (frame.resolved) {
    return Deadline::kAlreadyResolved;
  }
  frame.resolved = true;
  if (frame.completed_at.has_value()) {
    if (any_released_ && frame_id <= last_released_) {
      throw std::logic_error(
          "JitterBuffer: out-of-order release attempted");
    }
    frame.released = true;
    any_released_ = true;
    last_released_ = frame_id;
    release_log_.push_back(frame_id);
    ++counters_.released_on_time;
    return Deadline::kReleasedOnTime;
  }
  ++counters_.deadline_misses;
  return Deadline::kMiss;
}

bool JitterBuffer::is_complete(std::uint64_t frame_id) const {
  const auto it = frames_.find(frame_id);
  return it != frames_.end() && it->second.completed_at.has_value();
}

std::optional<sim::Duration> JitterBuffer::completion_latency(
    std::uint64_t frame_id) const {
  const auto it = frames_.find(frame_id);
  if (it == frames_.end() || !it->second.completed_at.has_value()) {
    return std::nullopt;
  }
  return *it->second.completed_at - it->second.capture;
}

}  // namespace movr::net
