#include <net/jitter_buffer.hpp>

#include <stdexcept>

namespace movr::net {

const JitterBuffer::FrameState* JitterBuffer::find(
    std::uint64_t frame_id) const {
  const Slot& slot = slots_[frame_id % kSlots];
  return slot.occupied && slot.frame_id == frame_id ? &slot.state : nullptr;
}

JitterBuffer::FrameState& JitterBuffer::claim(std::uint64_t frame_id) {
  Slot& slot = slots_[frame_id % kSlots];
  if (!slot.occupied || slot.frame_id != frame_id) {
    // Recycle the slot in place: clear() keeps each vector's capacity, so
    // a warmed buffer reassembles every new frame without touching the
    // heap.
    FrameState& s = slot.state;
    s.expected = 0;
    s.received = 0;
    s.have.clear();
    s.fec_groups = 0;
    s.parity_have.clear();
    s.group_missing.clear();
    s.capture = sim::TimePoint{};
    s.completed_at.reset();
    s.resolved = false;
    s.released = false;
    slot.frame_id = frame_id;
    slot.occupied = true;
  }
  return slot.state;
}

void JitterBuffer::init_frame(FrameState& frame, const Packet& packet) {
  frame.expected = packet.frame_packets;
  frame.have.assign(packet.frame_packets, false);
  frame.capture = packet.capture;
  frame.fec_groups = packet.fec_groups;
  if (packet.fec_groups > 0) {
    frame.parity_have.assign(packet.fec_groups, false);
    frame.group_missing.assign(packet.fec_groups, 0);
    // Data seq i belongs to group i % fec_groups (round-robin interleave).
    for (std::uint32_t g = 0; g < packet.fec_groups; ++g) {
      if (g < frame.expected) {
        frame.group_missing[g] =
            (frame.expected - g + packet.fec_groups - 1) / packet.fec_groups;
      }
    }
  }
}

std::optional<std::uint32_t> JitterBuffer::try_recover(FrameState& frame,
                                                       std::uint32_t group) {
  if (group >= frame.parity_have.size() || !frame.parity_have[group] ||
      frame.group_missing[group] != 1) {
    return std::nullopt;
  }
  for (std::uint32_t seq = group; seq < frame.expected;
       seq += frame.fec_groups) {
    if (!frame.have[seq]) {
      frame.have[seq] = true;
      ++frame.received;
      frame.group_missing[group] = 0;
      ++counters_.packets_recovered;
      return seq;
    }
  }
  return std::nullopt;
}

void JitterBuffer::check_completed(FrameState& frame, sim::TimePoint now) {
  if (frame.received == frame.expected && !frame.completed_at.has_value()) {
    frame.completed_at = now;
    ++counters_.frames_completed;
    if (frame.resolved) {
      ++counters_.late_completions;
    }
  }
}

JitterBuffer::Arrival JitterBuffer::on_packet(const Packet& packet,
                                              sim::TimePoint now) {
  FrameState& frame = claim(packet.frame_id);
  if (frame.have.empty()) {
    init_frame(frame, packet);
  }

  if (packet.parity) {
    if (packet.fec_group >= frame.parity_have.size() ||
        frame.parity_have[packet.fec_group]) {
      ++counters_.duplicates;
      return Arrival{};
    }
    frame.parity_have[packet.fec_group] = true;
    ++counters_.packets_received;
    ++counters_.parity_received;
    counters_.bytes_received += packet.payload_bytes;
    Arrival arrival{true, try_recover(frame, packet.fec_group)};
    check_completed(frame, now);
    return arrival;
  }

  if (packet.seq >= frame.have.size() || frame.have[packet.seq]) {
    // Already held — a retransmitted duplicate, or the air copy of a data
    // MPDU the FEC layer reconstructed first.
    ++counters_.duplicates;
    return Arrival{};
  }
  frame.have[packet.seq] = true;
  ++frame.received;
  ++counters_.packets_received;
  counters_.bytes_received += packet.payload_bytes;
  Arrival arrival{true, std::nullopt};
  if (frame.fec_groups > 0) {
    const std::uint32_t group = packet.seq % frame.fec_groups;
    --frame.group_missing[group];
    arrival.recovered = try_recover(frame, group);
  }
  check_completed(frame, now);
  return arrival;
}

JitterBuffer::Deadline JitterBuffer::on_deadline(std::uint64_t frame_id,
                                                 sim::TimePoint now) {
  (void)now;
  // A frame none of whose packets ever arrived claims an empty state here,
  // exactly like the old map's operator[] — it resolves as a miss.
  FrameState& frame = claim(frame_id);
  if (frame.resolved) {
    return Deadline::kAlreadyResolved;
  }
  frame.resolved = true;
  if (frame.completed_at.has_value()) {
    if (any_released_ && frame_id <= last_released_) {
      throw std::logic_error(
          "JitterBuffer: out-of-order release attempted");
    }
    frame.released = true;
    any_released_ = true;
    last_released_ = frame_id;
    release_log_.push_back(frame_id);
    ++counters_.released_on_time;
    return Deadline::kReleasedOnTime;
  }
  ++counters_.deadline_misses;
  return Deadline::kMiss;
}

bool JitterBuffer::is_complete(std::uint64_t frame_id) const {
  const FrameState* frame = find(frame_id);
  return frame != nullptr && frame->completed_at.has_value();
}

std::optional<sim::Duration> JitterBuffer::completion_latency(
    std::uint64_t frame_id) const {
  const FrameState* frame = find(frame_id);
  if (frame == nullptr || !frame->completed_at.has_value()) {
    return std::nullopt;
  }
  return *frame->completed_at - frame->capture;
}

std::size_t JitterBuffer::arena_bytes() const {
  std::size_t bytes = slots_.capacity() * sizeof(Slot) +
                      release_log_.capacity() * sizeof(std::uint64_t);
  for (const Slot& slot : slots_) {
    bytes += slot.state.have.capacity() / 8 +
             slot.state.parity_have.capacity() / 8 +
             slot.state.group_missing.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

void JitterBuffer::reset() {
  counters_ = Counters{};
  for (Slot& slot : slots_) {
    slot.occupied = false;  // state storage is recycled on the next claim
  }
  release_log_.clear();
  any_released_ = false;
  last_released_ = 0;
}

}  // namespace movr::net
