// Interleaved XOR-parity FEC between the Packetizer and the TxQueue.
//
// ARQ recovers from loss *reactively* — one ack round-trip plus one MPDU of
// air per loss — which is exactly the scheme a burst defeats: consecutive
// retransmissions fall into the same bad window and the per-frame budget
// drains with nothing delivered. Parity is the proactive complement: for
// every group of up to `k` data MPDUs the encoder appends one XOR-parity
// MPDU, and the receiver (JitterBuffer) reconstructs any single missing
// group member without waiting on the sender.
//
// Interleaving is what makes parity burst-proof: a frame's data MPDUs are
// dealt round-robin across `groups = max(ceil(n/k), depth)` groups, so a
// burst of up to `groups` *consecutive* losses costs each group at most one
// MPDU — every one recoverable. `depth` is therefore chosen to span the
// expected burst length in MPDUs (the RedundancyController estimates it
// from ack history; sim::BurstChannel::mean_burst_steps() is the oracle).
//
// The encoder only annotates and appends — payloads are not simulated, so
// "XOR" is bookkeeping: a parity MPDU is as long as its largest member and
// flies, queues, drops and retransmits exactly like a data MPDU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <net/frame.hpp>

namespace movr::net {

/// One frame's protection parameters, chosen per frame class by the
/// RedundancyController (or fixed by TransportConfig::fec for static FEC).
struct FecParams {
  /// Data MPDUs per parity group; 0 disables the layer (bit-identical
  /// pass-through — no parity, no group annotation).
  std::uint32_t k{0};
  /// Minimum interleave groups: consecutive MPDUs land in distinct groups,
  /// so `depth` consecutive losses cost each group at most one MPDU.
  std::uint32_t depth{1};

  bool enabled() const { return k > 0; }
};

class FecEncoder {
 public:
  struct Counters {
    std::uint64_t frames_protected{0};
    std::uint64_t parity_packets{0};
    std::uint64_t parity_bytes{0};
  };

  /// Groups the frame's data MPDUs (`packets`) `groups`-ways, annotates the
  /// FEC framing on every data MPDU and appends one parity MPDU per group.
  /// No-op when `params.k == 0`.
  void protect(std::vector<Packet>& packets, FecParams params);

  /// Group count protect() will use for `n` data MPDUs (clamped to n).
  static std::uint32_t group_count(std::uint32_t n, FecParams params);

  /// Data MPDUs in group `g` of a frame with `n` data MPDUs dealt
  /// round-robin over `groups` groups.
  static std::uint32_t group_size(std::uint32_t n, std::uint32_t groups,
                                  std::uint32_t g);

  const Counters& counters() const { return counters_; }
  /// Keeps the per-group scratch capacity (reset is for session reuse).
  void reset() { counters_ = Counters{}; }

  /// Bytes of backing storage currently owned (per-group scratch).
  std::size_t arena_bytes() const {
    return parity_scratch_.capacity() * sizeof(std::uint32_t);
  }

 private:
  Counters counters_;
  /// Per-group max payload size, reused across protect() calls so the
  /// steady-state tick path never allocates.
  std::vector<std::uint32_t> parity_scratch_;
};

}  // namespace movr::net
