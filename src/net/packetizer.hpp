// Splits frames into MPDUs sized for the current MCS.
//
// A fixed MPDU size is wrong at both ends of the rate ladder: at MCS 24 a
// tiny MPDU drowns in preamble overhead, at MCS 1 a huge MPDU occupies the
// air for milliseconds and starves the deadline scheduler. So the MPDU
// payload is chosen per frame to hit a target time-on-air at the MCS the
// rate adapter just picked, clamped to 802.11ad's aggregation limits.
#pragma once

#include <cstdint>
#include <vector>

#include <net/frame.hpp>
#include <phy/mcs.hpp>
#include <sim/time.hpp>

namespace movr::net {

class Packetizer {
 public:
  struct Config {
    /// Desired serialization time of one MPDU at the chosen MCS.
    sim::Duration target_mpdu_airtime{std::chrono::microseconds{150}};
    /// Clamp range for the MPDU payload, bytes (ad caps A-MPDUs at 262 kB).
    std::uint32_t min_mpdu_bytes{4096};
    std::uint32_t max_mpdu_bytes{262144};
  };

  Packetizer() : Packetizer{Config{}} {}
  explicit Packetizer(Config config) : config_{config} {}

  const Config& config() const { return config_; }

  /// MPDU payload size targeted at `mcs`, bytes.
  std::uint32_t mpdu_bytes_for(const phy::McsEntry& mcs) const;

  /// Splits `frame` into MPDUs for `mcs`. Payload bytes sum exactly to the
  /// frame size; every packet carries the frame's deadline.
  std::vector<Packet> split(const Frame& frame, const phy::McsEntry& mcs) const;

  /// Same split into a caller-owned buffer (cleared first): the transport's
  /// tick path reuses one scratch vector instead of allocating per frame.
  void split_into(const Frame& frame, const phy::McsEntry& mcs,
                  std::vector<Packet>& out) const;

 private:
  Config config_;
};

}  // namespace movr::net
