// Deadline-aware transmit queue on the AP side.
//
// VR traffic is not elastic: a frame that cannot reach the display by its
// deadline is worthless, and every microsecond of air spent on it is stolen
// from the frame behind it. The queue therefore (a) drops already-late
// frames from the head before handing out work, (b) sheds the *oldest*
// frame on overflow (it is the closest to its deadline, hence the least
// likely to make it), and (c) keeps backpressure counters so the metrics
// can distinguish "link too slow" from "link lossy".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <net/frame.hpp>
#include <sim/time.hpp>

namespace movr::net {

class TxQueue {
 public:
  struct Config {
    /// Frames the queue will hold before shedding the oldest (~89 ms of
    /// video at 90 Hz — far beyond any deadline that could still be met).
    std::size_t max_frames{8};
  };

  struct Counters {
    std::uint64_t frames_enqueued{0};
    std::uint64_t packets_enqueued{0};
    std::uint64_t packets_dequeued{0};
    /// Head-of-line drops: the frame's deadline passed while it queued.
    std::uint64_t frames_dropped_stale{0};
    std::uint64_t packets_dropped_stale{0};
    /// Backpressure drops: queue full, oldest frame shed.
    std::uint64_t frames_dropped_full{0};
    std::uint64_t packets_dropped_full{0};
    /// Purges requested by ARQ frame abandonment.
    std::uint64_t packets_purged{0};
    /// High-water marks.
    std::size_t max_depth_frames{0};
    std::size_t max_depth_packets{0};
    std::uint64_t max_depth_bytes{0};
  };

  TxQueue() : TxQueue{Config{}} {}
  explicit TxQueue(Config config) : config_{config} {}

  const Config& config() const { return config_; }
  const Counters& counters() const { return counters_; }

  /// Enqueues a packetized frame. On overflow the oldest queued frame is
  /// shed first; ids of shed frames are appended to `dropped`.
  void push(const std::vector<Packet>& frame,
            std::vector<std::uint64_t>& dropped);

  /// Head-of-line drop: removes leading packets whose deadline is at or
  /// before `now`; ids of affected frames are appended to `dropped`.
  void drop_stale(sim::TimePoint now, std::vector<std::uint64_t>& dropped);

  /// Next packet to transmit, nullptr when empty.
  const Packet* front() const;
  Packet pop();

  /// Removes every queued packet of `frame_id` (ARQ gave up on the frame).
  /// Returns how many packets were purged.
  std::size_t purge_frame(std::uint64_t frame_id);

  std::size_t depth_packets() const { return queue_.size() - head_; }
  std::size_t depth_frames() const;
  std::uint64_t depth_bytes() const { return bytes_; }
  bool empty() const { return head_ == queue_.size(); }

  /// Bytes of backing storage currently owned (ring capacity) — the
  /// queue's share of the transport's steady-state arena.
  std::size_t arena_bytes() const { return queue_.capacity() * sizeof(Packet); }

  /// Back to a freshly constructed state (same config), for reuse across
  /// back-to-back sessions. Keeps the ring's capacity.
  void reset();

 private:
  void note_depth();
  void erase_head_frame(std::uint64_t frame_id, std::uint64_t& frames,
                        std::uint64_t& packets);
  void maybe_compact();

  Config config_;
  Counters counters_;
  /// Flat ring: live packets are [head_, queue_.size()). Popping advances
  /// head_; the dead prefix is compacted amortizedly (element moves, never
  /// an allocation), so the steady-state tick path never touches the heap.
  std::vector<Packet> queue_;
  std::size_t head_{0};
  std::uint64_t bytes_{0};
};

}  // namespace movr::net
