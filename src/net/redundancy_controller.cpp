#include <net/redundancy_controller.hpp>

#include <algorithm>
#include <cmath>

namespace movr::net {

void RedundancyController::on_tick(bool stressed, bool predicted) {
  if (stressed || predicted) {
    // The hold spans this tick plus `stress_hold_ticks` quiet ones. A
    // predicted-only tick arms the same hold: protection must be in place
    // before the forecast burst, and if the forecast was wrong the hold
    // simply expires.
    stress_hold_ = config_.stress_hold_ticks + 1;
    if (stressed) {
      ++counters_.stressed_ticks;
    } else {
      ++counters_.predicted_ticks;
    }
  } else if (stress_hold_ > 0) {
    --stress_hold_;
  }
}

void RedundancyController::on_transmission(bool data_lost) {
  const double x = data_lost ? 1.0 : 0.0;
  loss_ewma_ += config_.ewma_alpha * (x - loss_ewma_);
  if (any_history_ && prev_lost_) {
    burst_ewma_ += config_.ewma_alpha * (x - burst_ewma_);
  }
  prev_lost_ = data_lost;
  any_history_ = true;
}

double RedundancyController::expected_burst_mpdus() const {
  // Mean geometric run length with continuation probability burst_ewma_,
  // floored so a vanishing estimate still means "bursts of one".
  return 1.0 / std::max(0.05, 1.0 - burst_ewma_);
}

FecParams RedundancyController::plan(bool keyframe) {
  const bool stressed = stress_hold_ > 0;
  if (!active_) {
    if (loss_ewma_ > config_.enable_loss || stressed) {
      active_ = true;
      ++counters_.enables;
    }
  } else if (loss_ewma_ < config_.disable_loss && !stressed) {
    active_ = false;
    ++counters_.disables;
  }
  if (!active_) {
    ++counters_.frames_unprotected;
    return FecParams{};
  }
  ++counters_.frames_protected;

  std::uint32_t k;
  std::uint32_t depth;
  if (stressed) {
    // Proactive maximum: the burst is happening *now*; the EWMA lags it.
    k = config_.k_min;
    depth = config_.depth_max;
  } else {
    const double span =
        std::max(1e-9, config_.heavy_loss - config_.enable_loss);
    const double t = std::clamp(
        (loss_ewma_ - config_.enable_loss) / span, 0.0, 1.0);
    const double k_f = static_cast<double>(config_.k_max) +
                       t * (static_cast<double>(config_.k_min) -
                            static_cast<double>(config_.k_max));
    k = std::max(config_.k_min,
                 static_cast<std::uint32_t>(std::lround(k_f)));
    depth = std::clamp(
        static_cast<std::uint32_t>(std::ceil(expected_burst_mpdus())), 1u,
        config_.depth_max);
  }
  if (keyframe) {
    k = std::max(config_.keyframe_k_min, k / 2);
  }
  return FecParams{k, depth};
}

int RedundancyController::retx_budget(bool keyframe) const {
  (void)keyframe;
  // The FEC-for-ARQ budget trade only pays in the light-loss regime, where
  // parity really does absorb the common single losses. Near heavy loss —
  // or while the stress signal is up — holes outnumber parity and every
  // retransmission matters, so the full budget stays in force.
  const bool light = loss_ewma_ < config_.heavy_loss && stress_hold_ == 0;
  return (active_ && light) ? config_.retx_budget_protected
                            : config_.retx_budget_unprotected;
}

void RedundancyController::reset() {
  counters_ = Counters{};
  loss_ewma_ = 0.0;
  burst_ewma_ = 0.0;
  prev_lost_ = false;
  any_history_ = false;
  active_ = false;
  stress_hold_ = 0;
}

}  // namespace movr::net
