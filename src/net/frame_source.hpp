// The encoder model: a 90 Hz frame stream with an I/P size cadence.
//
// The paper streams raw pixels, but a transport still sees *frames*: bursts
// of bits arriving on the display clock, each with a hard display deadline.
// This source emits one frame per tick with sizes that average to the
// target bitrate — keyframes `keyframe_ratio` times larger than P-frames,
// one per GOP — plus a deterministic size jitter, so the TX queue sees the
// bursty arrival process that makes deadline scheduling interesting.
#pragma once

#include <cstdint>
#include <random>

#include <net/frame.hpp>
#include <sim/time.hpp>

namespace movr::net {

class FrameSource {
 public:
  struct Config {
    /// Frame cadence, Hz (the display's refresh rate).
    double fps{90.0};
    /// Long-run average bitrate the frame sizes integrate to, Mbit/s.
    /// Zero = the owner derives it (vr::Session uses the display's
    /// required rate).
    double target_mbps{0.0};
    /// Display deadline relative to capture (motion-to-photon budget).
    sim::Duration latency_budget{std::chrono::milliseconds{10}};
    /// Frames per group-of-pictures: one keyframe every `gop_length`.
    int gop_length{30};
    /// Keyframe size / P-frame size.
    double keyframe_ratio{2.5};
    /// Uniform per-frame size wobble, +/- this fraction of the mean.
    double size_jitter{0.1};
    std::uint64_t seed{7};
  };

  explicit FrameSource(Config config);

  /// Emits the next frame, captured at `capture`.
  Frame next(sim::TimePoint capture);

  std::uint64_t frames_emitted() const { return next_id_; }
  const Config& config() const { return config_; }

  /// Back to a freshly constructed state (same config, reseeded RNG), for
  /// reuse across back-to-back sessions.
  void reset();

  /// Mean P-frame / keyframe sizes implied by the config, bytes.
  double p_frame_bytes() const { return p_bytes_; }
  double keyframe_bytes() const { return p_bytes_ * config_.keyframe_ratio; }

 private:
  Config config_;
  double p_bytes_;
  std::uint64_t next_id_{0};
  std::mt19937_64 rng_;
};

}  // namespace movr::net
