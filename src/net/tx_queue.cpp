#include <net/tx_queue.hpp>

#include <algorithm>

namespace movr::net {

std::size_t TxQueue::depth_frames() const {
  std::size_t frames = 0;
  std::uint64_t last_id = 0;
  bool first = true;
  for (std::size_t i = head_; i < queue_.size(); ++i) {
    if (first || queue_[i].frame_id != last_id) {
      ++frames;
      last_id = queue_[i].frame_id;
      first = false;
    }
  }
  return frames;
}

void TxQueue::note_depth() {
  counters_.max_depth_packets =
      std::max(counters_.max_depth_packets, depth_packets());
  counters_.max_depth_frames =
      std::max(counters_.max_depth_frames, depth_frames());
  counters_.max_depth_bytes = std::max(counters_.max_depth_bytes, bytes_);
}

void TxQueue::maybe_compact() {
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ >= 32 && head_ * 2 >= queue_.size()) {
    // Amortized O(1) per pop: moves elements within the ring's existing
    // storage, never allocates.
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void TxQueue::erase_head_frame(std::uint64_t frame_id, std::uint64_t& frames,
                               std::uint64_t& packets) {
  ++frames;
  while (head_ < queue_.size() && queue_[head_].frame_id == frame_id) {
    bytes_ -= queue_[head_].payload_bytes;
    ++head_;
    ++packets;
  }
  maybe_compact();
}

void TxQueue::push(const std::vector<Packet>& frame,
                   std::vector<std::uint64_t>& dropped) {
  while (!empty() && depth_frames() >= config_.max_frames) {
    const std::uint64_t victim = queue_[head_].frame_id;
    erase_head_frame(victim, counters_.frames_dropped_full,
                     counters_.packets_dropped_full);
    dropped.push_back(victim);
  }
  for (const Packet& p : frame) {
    queue_.push_back(p);
    bytes_ += p.payload_bytes;
    ++counters_.packets_enqueued;
  }
  ++counters_.frames_enqueued;
  note_depth();
}

void TxQueue::drop_stale(sim::TimePoint now,
                         std::vector<std::uint64_t>& dropped) {
  while (!empty() && queue_[head_].deadline <= now) {
    const std::uint64_t victim = queue_[head_].frame_id;
    erase_head_frame(victim, counters_.frames_dropped_stale,
                     counters_.packets_dropped_stale);
    dropped.push_back(victim);
  }
}

const Packet* TxQueue::front() const {
  return empty() ? nullptr : &queue_[head_];
}

Packet TxQueue::pop() {
  Packet p = queue_[head_];
  ++head_;
  bytes_ -= p.payload_bytes;
  ++counters_.packets_dequeued;
  maybe_compact();
  return p;
}

std::size_t TxQueue::purge_frame(std::uint64_t frame_id) {
  std::size_t purged = 0;
  std::size_t write = head_;
  for (std::size_t read = head_; read < queue_.size(); ++read) {
    if (queue_[read].frame_id == frame_id) {
      bytes_ -= queue_[read].payload_bytes;
      ++purged;
    } else {
      if (write != read) {
        queue_[write] = queue_[read];
      }
      ++write;
    }
  }
  queue_.resize(write);
  maybe_compact();
  counters_.packets_purged += purged;
  return purged;
}

void TxQueue::reset() {
  counters_ = Counters{};
  queue_.clear();
  head_ = 0;
  bytes_ = 0;
}

}  // namespace movr::net
