#include <net/tx_queue.hpp>

#include <algorithm>

namespace movr::net {

std::size_t TxQueue::depth_frames() const {
  std::size_t frames = 0;
  std::uint64_t last_id = 0;
  bool first = true;
  for (const Packet& p : queue_) {
    if (first || p.frame_id != last_id) {
      ++frames;
      last_id = p.frame_id;
      first = false;
    }
  }
  return frames;
}

void TxQueue::note_depth() {
  counters_.max_depth_packets =
      std::max(counters_.max_depth_packets, queue_.size());
  counters_.max_depth_frames =
      std::max(counters_.max_depth_frames, depth_frames());
  counters_.max_depth_bytes = std::max(counters_.max_depth_bytes, bytes_);
}

void TxQueue::erase_head_frame(std::uint64_t frame_id, std::uint64_t& frames,
                               std::uint64_t& packets) {
  ++frames;
  while (!queue_.empty() && queue_.front().frame_id == frame_id) {
    bytes_ -= queue_.front().payload_bytes;
    queue_.pop_front();
    ++packets;
  }
}

void TxQueue::push(const std::vector<Packet>& frame,
                   std::vector<std::uint64_t>& dropped) {
  while (!queue_.empty() && depth_frames() >= config_.max_frames) {
    const std::uint64_t victim = queue_.front().frame_id;
    erase_head_frame(victim, counters_.frames_dropped_full,
                     counters_.packets_dropped_full);
    dropped.push_back(victim);
  }
  for (const Packet& p : frame) {
    queue_.push_back(p);
    bytes_ += p.payload_bytes;
    ++counters_.packets_enqueued;
  }
  ++counters_.frames_enqueued;
  note_depth();
}

void TxQueue::drop_stale(sim::TimePoint now,
                         std::vector<std::uint64_t>& dropped) {
  while (!queue_.empty() && queue_.front().deadline <= now) {
    const std::uint64_t victim = queue_.front().frame_id;
    erase_head_frame(victim, counters_.frames_dropped_stale,
                     counters_.packets_dropped_stale);
    dropped.push_back(victim);
  }
}

const Packet* TxQueue::front() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

Packet TxQueue::pop() {
  Packet p = queue_.front();
  queue_.pop_front();
  bytes_ -= p.payload_bytes;
  ++counters_.packets_dequeued;
  return p;
}

std::size_t TxQueue::purge_frame(std::uint64_t frame_id) {
  std::size_t purged = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->frame_id == frame_id) {
      bytes_ -= it->payload_bytes;
      it = queue_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  counters_.packets_purged += purged;
  return purged;
}

void TxQueue::reset() {
  counters_ = Counters{};
  queue_.clear();
  bytes_ = 0;
}

}  // namespace movr::net
