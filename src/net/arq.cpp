#include <net/arq.hpp>

#include <algorithm>

namespace movr::net {

const Arq::FrameCtl* Arq::find(std::uint64_t frame_id) const {
  for (const FrameCtl& ctl : frames_) {
    if (ctl.frame_id == frame_id) {
      return &ctl;
    }
  }
  return nullptr;
}

Arq::FrameCtl* Arq::find(std::uint64_t frame_id) {
  for (FrameCtl& ctl : frames_) {
    if (ctl.frame_id == frame_id) {
      return &ctl;
    }
  }
  return nullptr;
}

void Arq::prune() {
  if (frontier_ < kPruneWindow) {
    return;
  }
  const std::uint64_t horizon = frontier_ - kPruneWindow;
  frames_.erase(std::remove_if(frames_.begin(), frames_.end(),
                               [horizon](const FrameCtl& ctl) {
                                 return ctl.frame_id < horizon;
                               }),
                frames_.end());
}

Arq::FrameCtl& Arq::touch(std::uint64_t frame_id) {
  if (frame_id > frontier_) {
    frontier_ = frame_id;
    prune();
  }
  if (FrameCtl* ctl = find(frame_id)) {
    return *ctl;
  }
  if (frames_.capacity() == frames_.size()) {
    frames_.reserve(frames_.empty() ? 2 * kPruneWindow
                                    : 2 * frames_.capacity());
  }
  frames_.push_back(FrameCtl{});
  frames_.back().frame_id = frame_id;
  return frames_.back();
}

void Arq::start(const Packet& packet, bool is_retransmit) {
  (void)packet;
  ++outstanding_;
  ++counters_.transmissions;
  if (is_retransmit) {
    ++counters_.retransmits;
  }
}

Arq::Verdict Arq::resolve(const Packet& packet, bool data_lost,
                          bool ack_lost) {
  --outstanding_;
  if (!data_lost && !ack_lost) {
    ++counters_.acked;
    return Verdict::kAcked;
  }
  if (data_lost) {
    ++counters_.data_losses;
  } else {
    ++counters_.ack_losses;
  }
  FrameCtl& ctl = touch(packet.frame_id);
  if (ctl.abandoned) {
    // The frame is already given up; a delivered-but-unacked straggler
    // still counts as done (the receiver has the bytes).
    return data_lost ? Verdict::kAbandonFrame : Verdict::kAcked;
  }
  if (ctl.retx_used < frame_budget(packet.frame_id)) {
    ++ctl.retx_used;
    return Verdict::kRetransmit;
  }
  if (data_lost) {
    ++counters_.frames_abandoned;
    ctl.abandoned = true;
    return Verdict::kAbandonFrame;
  }
  // Out of budget but the data made it: the sender wrongly books a loss,
  // the receiver happily completes the frame.
  ++counters_.acked;
  return Verdict::kAcked;
}

void Arq::forgo(const Packet& packet) {
  (void)packet;
  --outstanding_;
  ++counters_.forgone;
}

void Arq::abandon_frame(std::uint64_t frame_id) {
  touch(frame_id).abandoned = true;
}

void Arq::set_frame_budget(std::uint64_t frame_id, int budget) {
  FrameCtl& ctl = touch(frame_id);
  ctl.has_override = true;
  ctl.budget_override = budget;
}

int Arq::frame_budget(std::uint64_t frame_id) const {
  const FrameCtl* ctl = find(frame_id);
  return ctl != nullptr && ctl->has_override ? ctl->budget_override
                                             : config_.max_retx_per_frame;
}

void Arq::forget_frame(std::uint64_t frame_id) {
  if (FrameCtl* ctl = find(frame_id)) {
    *ctl = frames_.back();
    frames_.pop_back();
  }
}

void Arq::reset() {
  counters_ = Counters{};
  outstanding_ = 0;
  frames_.clear();
  frontier_ = 0;
}

}  // namespace movr::net
