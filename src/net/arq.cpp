#include <net/arq.hpp>

namespace movr::net {

void Arq::start(const Packet& packet, bool is_retransmit) {
  (void)packet;
  ++outstanding_;
  ++counters_.transmissions;
  if (is_retransmit) {
    ++counters_.retransmits;
  }
}

Arq::Verdict Arq::resolve(const Packet& packet, bool data_lost,
                          bool ack_lost) {
  --outstanding_;
  if (!data_lost && !ack_lost) {
    ++counters_.acked;
    return Verdict::kAcked;
  }
  if (data_lost) {
    ++counters_.data_losses;
  } else {
    ++counters_.ack_losses;
  }
  if (abandoned_.contains(packet.frame_id)) {
    // The frame is already given up; a delivered-but-unacked straggler
    // still counts as done (the receiver has the bytes).
    return data_lost ? Verdict::kAbandonFrame : Verdict::kAcked;
  }
  int& used = retx_used_[packet.frame_id];
  if (used < frame_budget(packet.frame_id)) {
    ++used;
    return Verdict::kRetransmit;
  }
  if (data_lost) {
    ++counters_.frames_abandoned;
    abandoned_.insert(packet.frame_id);
    return Verdict::kAbandonFrame;
  }
  // Out of budget but the data made it: the sender wrongly books a loss,
  // the receiver happily completes the frame.
  ++counters_.acked;
  return Verdict::kAcked;
}

void Arq::forgo(const Packet& packet) {
  (void)packet;
  --outstanding_;
  ++counters_.forgone;
}

void Arq::abandon_frame(std::uint64_t frame_id) {
  abandoned_.insert(frame_id);
}

void Arq::set_frame_budget(std::uint64_t frame_id, int budget) {
  budget_override_[frame_id] = budget;
}

int Arq::frame_budget(std::uint64_t frame_id) const {
  const auto it = budget_override_.find(frame_id);
  return it != budget_override_.end() ? it->second
                                      : config_.max_retx_per_frame;
}

void Arq::forget_frame(std::uint64_t frame_id) {
  retx_used_.erase(frame_id);
  budget_override_.erase(frame_id);
  abandoned_.erase(frame_id);
}

void Arq::reset() {
  counters_ = Counters{};
  outstanding_ = 0;
  retx_used_.clear();
  budget_override_.clear();
  abandoned_.clear();
}

}  // namespace movr::net
