// Umbrella header for the frame-transport data-plane:
//
//   #include <net/net.hpp>
//
// brings in the encoder model (FrameSource), MCS-aware Packetizer, the
// deadline-aware TxQueue, stop-and-wait-window Arq, interleaved XOR-parity
// FecEncoder with its adaptive RedundancyController, headset-side
// JitterBuffer, the Transport conductor and its metrics.
#pragma once

#include <net/arq.hpp>
#include <net/fec.hpp>
#include <net/frame.hpp>
#include <net/frame_source.hpp>
#include <net/jitter_buffer.hpp>
#include <net/packetizer.hpp>
#include <net/redundancy_controller.hpp>
#include <net/stats.hpp>
#include <net/transport.hpp>
#include <net/tx_queue.hpp>
