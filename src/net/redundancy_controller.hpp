// Adaptive FEC/ARQ redundancy control from ack history.
//
// The sender cannot see the channel, but it sees every transmission
// resolve: acked or lost. Two EWMAs over that history — the loss rate and
// the loss-after-loss rate (burstiness) — are enough to choose, per frame,
// how much proactive parity to spend and how much reactive retransmission
// budget to keep:
//
//   * Hysteresis, not a threshold: FEC turns on above `enable_loss` and
//     only off again below `disable_loss`, so a loss estimate hovering at
//     the boundary doesn't thrash parity on and off every frame.
//   * Loss rate picks the code rate: k slides from `k_max` (one parity per
//     8 at light loss) to `k_min` (one per 2 near `heavy_loss`).
//   * Burstiness picks the interleave depth: the expected loss-burst length
//     in MPDUs is 1/(1 - P(loss|loss)), and the depth must span it so a
//     whole burst costs each group at most one member.
//   * Keyframes get deeper protection (k halved): an I-frame miss stalls
//     the whole GOP, so it deserves more of the redundancy budget.
//   * Stress is proactive: while the session signals a handover-pending /
//     degraded / fault window (and for `stress_hold_ticks` after), maximum
//     protection applies immediately — the whole point of proactive
//     redundancy is to be in place *before* the ack history can show the
//     burst.
//   * FEC trades against ARQ: while protection is on, the per-frame
//     retransmit budget drops — parity already covers the common single
//     losses, and air spent on deep retransmission of a doomed frame is
//     stolen from the frames behind it.
#pragma once

#include <cstdint>

#include <net/fec.hpp>

namespace movr::net {

class RedundancyController {
 public:
  struct Config {
    /// EWMA weight per resolved transmission.
    double ewma_alpha{0.05};
    /// Hysteresis band: FEC on above `enable_loss`, off below
    /// `disable_loss` (must be < enable_loss).
    double enable_loss{0.02};
    double disable_loss{0.005};
    /// Loss at which protection saturates at `k_min`.
    double heavy_loss{0.15};
    std::uint32_t k_min{2};
    std::uint32_t k_max{8};
    /// Keyframe k floor (k halves for keyframes but never below this).
    std::uint32_t keyframe_k_min{2};
    std::uint32_t depth_max{8};
    /// Retransmit budget per frame while FEC is active / inactive.
    int retx_budget_protected{6};
    int retx_budget_unprotected{8};
    /// Ticks of maximum protection after the stress signal clears (a
    /// handover's correlated loss outlives the mode flag).
    int stress_hold_ticks{9};
  };

  struct Counters {
    std::uint64_t enables{0};
    std::uint64_t disables{0};
    std::uint64_t stressed_ticks{0};
    /// Ticks where only the *predicted* stress signal was set — protection
    /// pre-armed on a forecast, before any real fault.
    std::uint64_t predicted_ticks{0};
    std::uint64_t frames_protected{0};
    std::uint64_t frames_unprotected{0};
  };

  RedundancyController() : RedundancyController{Config{}} {}
  explicit RedundancyController(Config config) : config_{config} {}

  /// Once per frame tick, before plan(): the session's stress signal
  /// (fault window open, LinkManager in kHandoverPending/kDegraded).
  void on_tick(bool stressed) { on_tick(stressed, false); }

  /// Stress plus the forecaster's *predicted* stress: a high-confidence
  /// risk window pre-arms maximum protection before the burst starts (the
  /// whole point — parity must be in the air before the ack history can
  /// show the loss). A wrong prediction costs only the extra parity for
  /// the window plus the hold — never less protection than reactive.
  void on_tick(bool stressed, bool predicted);

  /// One resolved transmission from the ack history (raw channel outcome,
  /// before any FEC recovery credit).
  void on_transmission(bool data_lost);

  /// Protection for the next frame of the given class.
  FecParams plan(bool keyframe);

  /// ARQ retransmit budget for the next frame of the given class.
  int retx_budget(bool keyframe) const;

  bool active() const { return active_; }
  bool stressed() const { return stress_hold_ > 0; }
  double loss_estimate() const { return loss_ewma_; }
  /// P(loss | previous transmission lost) — the burstiness EWMA.
  double loss_after_loss() const { return burst_ewma_; }
  /// Expected loss-burst length in MPDUs implied by the burstiness EWMA.
  double expected_burst_mpdus() const;

  const Config& config() const { return config_; }
  const Counters& counters() const { return counters_; }
  void reset();

 private:
  Config config_;
  Counters counters_;
  double loss_ewma_{0.0};
  double burst_ewma_{0.0};
  bool prev_lost_{false};
  bool any_history_{false};
  bool active_{false};
  int stress_hold_{0};
};

}  // namespace movr::net
