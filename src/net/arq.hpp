// Stop-and-wait-window ARQ with a per-frame retransmission budget.
//
// The link carries one MPDU at a time (mmWave is a single beam, not a
// bundle), but the sender does not idle waiting for acks: up to `window`
// transmissions may be outstanding before it stalls. Losses are decided by
// the caller (the transport rolls the coins from the PHY's PER at the true
// SNR plus any fault-window loss) — the ARQ only encodes the *policy*:
// failed data is retransmitted until the frame's budget runs out, at which
// point the whole frame is abandoned; retransmitting a delivered-but-
// unacked packet produces the duplicate the jitter buffer must absorb.
//
// A frame deadline is ~10 ms and a retransmission costs ~150 us of air, so
// a small finite budget is the right policy: beyond it the frame would miss
// the display anyway and the air is better spent on the next frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <net/frame.hpp>

namespace movr::net {

class Arq {
 public:
  struct Config {
    /// Outstanding (sent, not yet acked) transmissions before the sender
    /// stalls.
    int window{4};
    /// Retransmissions a single frame may consume before it is abandoned.
    int max_retx_per_frame{8};
  };

  struct Counters {
    std::uint64_t transmissions{0};
    std::uint64_t retransmits{0};
    std::uint64_t acked{0};
    std::uint64_t data_losses{0};
    std::uint64_t ack_losses{0};
    std::uint64_t frames_abandoned{0};
    /// Transmissions resolved as lost but deliberately not retried
    /// (expendable MPDUs — parity never consumes retransmit budget).
    std::uint64_t forgone{0};
  };

  /// What the sender should do after a transmission resolves.
  enum class Verdict {
    kAcked,         // done with this packet
    kRetransmit,    // send the same packet again (budget consumed)
    kAbandonFrame,  // budget exhausted: give up on the whole frame
  };

  Arq() : Arq{Config{}} {}
  explicit Arq(Config config) : config_{config} {}

  const Config& config() const { return config_; }
  const Counters& counters() const { return counters_; }

  bool can_send() const { return outstanding_ < config_.window; }
  int outstanding() const { return outstanding_; }

  /// Records a transmission entering the air.
  void start(const Packet& packet, bool is_retransmit);

  /// Resolves one outstanding transmission. `data_lost`: the MPDU did not
  /// reach the receiver. `ack_lost`: it did, but the ack did not make it
  /// back (the sender cannot tell the two apart; the receiver dedups).
  Verdict resolve(const Packet& packet, bool data_lost, bool ack_lost);

  /// Resolves one outstanding transmission as lost-and-written-off: no
  /// retransmission, no budget charge. Used for expendable MPDUs (parity).
  void forgo(const Packet& packet);

  /// External abandonment (e.g. the queue shed the frame as stale): no
  /// further retransmissions will be granted for it.
  void abandon_frame(std::uint64_t frame_id);
  bool is_abandoned(std::uint64_t frame_id) const {
    const FrameCtl* ctl = find(frame_id);
    return ctl != nullptr && ctl->abandoned;
  }

  /// Overrides `max_retx_per_frame` for one frame. The redundancy
  /// controller uses this to trade budgets: a FEC-protected frame gets a
  /// shallower ARQ budget because parity already covers the common single
  /// losses. Must be set before the frame's first resolve.
  void set_frame_budget(std::uint64_t frame_id, int budget);

  /// Retransmit budget in force for `frame_id`.
  int frame_budget(std::uint64_t frame_id) const;

  /// Drops per-frame bookkeeping once the frame has fully resolved.
  void forget_frame(std::uint64_t frame_id);

  /// Back to a freshly constructed state (same config), for reuse across
  /// back-to-back sessions. Keeps the frame table's capacity.
  void reset();

  /// Bytes of backing storage currently owned (frame-table capacity).
  std::size_t arena_bytes() const {
    return frames_.capacity() * sizeof(FrameCtl);
  }

 private:
  /// All per-frame bookkeeping in one flat record. Frame ids are dense and
  /// monotone, the working set is a handful of in-flight frames, so a
  /// linear-scanned vector beats three hash tables — and, crucially, never
  /// allocates in steady state (node-based containers allocate per insert).
  struct FrameCtl {
    std::uint64_t frame_id{0};
    int retx_used{0};
    int budget_override{0};
    bool has_override{false};
    bool abandoned{false};
  };

  /// Entries this far behind the newest frame id are dead: every
  /// transmission of a frame resolves within a few frame intervals
  /// (deadline ~1 interval, ack_delay microseconds), so nothing can touch a
  /// frame 64 ids old. Pruning keeps the table O(window), not O(session).
  static constexpr std::uint64_t kPruneWindow = 64;

  const FrameCtl* find(std::uint64_t frame_id) const;
  FrameCtl* find(std::uint64_t frame_id);
  /// Finds or appends the frame's record, advancing the prune frontier.
  FrameCtl& touch(std::uint64_t frame_id);
  void prune();

  Config config_;
  Counters counters_;
  int outstanding_{0};
  std::vector<FrameCtl> frames_;
  std::uint64_t frontier_{0};  // highest frame id seen
};

}  // namespace movr::net
