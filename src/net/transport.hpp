// The transport data-plane conductor: encoder -> packetizer -> deadline
// queue -> ARQ -> air -> jitter buffer, all driven off the event queue.
//
// One Transport instance is the full sender+receiver pipeline for a
// session. Each 90 Hz tick the session posts the current channel state
// (the MCS its rate adapter picked and that MCS's packet error rate at the
// true SNR, plus any fault-window loss); the transport emits the next
// frame, packetizes it for that MCS, and keeps the air busy: one MPDU on
// air at a time, acks resolving `ack_delay` later, up to the ARQ window
// outstanding. Every frame's fate is settled by events — a display-
// deadline event releases (or misses) it, loss coins resolve transmissions
// — so transport time interleaves exactly with the rest of the simulation.
//
// The packet ledger is the subsystem's conservation law: every packet that
// enters the TX queue is eventually delivered (counted once by the jitter
// buffer), dropped (queue shed / stale, or ARQ budget), recovered — its
// payload rebuilt from FEC parity before any counted copy arrived — or
// still in flight when the session ends.
// tests/net_transport_property_test.cpp fuzzes this equation across random
// loss, burst and fault schedules.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <utility>
#include <vector>

#include <net/arq.hpp>
#include <net/fec.hpp>
#include <net/frame.hpp>
#include <net/frame_source.hpp>
#include <net/jitter_buffer.hpp>
#include <net/packetizer.hpp>
#include <net/redundancy_controller.hpp>
#include <net/stats.hpp>
#include <net/tx_queue.hpp>
#include <phy/mcs.hpp>
#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::net {

/// What the link looks like this frame, as the session's rate control saw
/// it. `packet_loss` is the per-MPDU loss probability at the chosen MCS and
/// the true SNR; `extra_loss` stacks fault-window loss on top.
struct ChannelState {
  const phy::McsEntry* mcs{nullptr};  // nullptr: link down, nothing flies
  double packet_loss{0.0};
  double extra_loss{0.0};
  /// Correlated-loss warning from the control plane (fault window open,
  /// handover pending, degraded mode): the adaptive FEC controller boosts
  /// protection proactively while this is set.
  bool stressed{false};
  /// Forecast-only stress: a high-confidence occlusion risk window is open
  /// but nothing has failed yet. Pre-arms the FEC controller exactly like
  /// `stressed`; unlike `stressed` it never forces the burst channel bad —
  /// a belief is not physics.
  bool predicted_stress{false};
  /// Arm speculative dual-path reception for this tick's data MPDUs: each
  /// gets one extra copy on the alternate beam (direct while riding a
  /// reflector, reflector while direct) with per-MPDU loss `alt_loss`.
  /// Copies are terminally resolved the instant the primary transmission
  /// is (redundant -> speculative-dup bucket, lost -> dropped bucket), so
  /// the extended ledger closes at every instant.
  bool speculative{false};
  double alt_loss{1.0};
  /// Fraction (0, 1] of the AP's airtime this link may use — multi-user
  /// arena plumbing. Serialization slows by 1/share (an MPDU's wall-clock
  /// air occupancy includes the other users' interleaved slots). Exactly
  /// 1.0 (the default) is bit-identical to the single-user transport.
  double airtime_share{1.0};
  /// Mutual-interference SNR penalty (dB) the session already folded into
  /// `packet_loss`; carried for accounting only.
  double interference_db{0.0};

  double loss() const {
    const double p = packet_loss + extra_loss;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }
};

struct TransportConfig {
  FrameSource::Config source{};
  Packetizer::Config packetizer{};
  TxQueue::Config queue{};
  Arq::Config arq{};
  /// Static FEC protection applied to every frame (net/fec.hpp); k == 0
  /// disables the layer entirely (bit-identical pass-through). Ignored
  /// when `adaptive_fec` is set.
  FecParams fec{};
  /// Let the RedundancyController pick protection per frame from ack
  /// history and the channel's `stressed` signal.
  bool adaptive_fec{false};
  RedundancyController::Config redundancy{};
  /// Ack resolution delay after a data MPDU leaves the air.
  sim::Duration ack_delay{std::chrono::microseconds{5}};
  /// Ack loss probability = `ack_loss_factor` x data loss (acks are short
  /// and robustly modulated, but not immune) — the source of duplicates.
  double ack_loss_factor{0.25};
  /// Loss stacked onto the channel while a fault window is active; the
  /// session reads this when building ChannelState (unless a burst-loss
  /// channel model is driving `extra_loss` instead).
  double fault_extra_loss{0.5};
  std::uint64_t seed{99};
};

class Transport {
 public:
  /// Every emitted frame lands in exactly one terminal kind.
  struct FrameOutcome {
    enum class Kind : std::uint8_t {
      kPending,       // not yet resolved (transient)
      kOnTime,        // released at its display deadline
      kLate,          // completed after its deadline (player saw a glitch)
      kMiss,          // deadline passed, never completed, never dropped
      kDroppedQueue,  // shed by the TX queue (stale or backpressure)
      kDroppedArq,    // retransmission budget exhausted
      kUnresolved,    // session ended before its deadline
    };

    std::uint64_t id{0};
    sim::TimePoint capture{};
    Kind kind{Kind::kPending};
    double latency_ms{TransportMetrics::kNeverMs};

    bool delivered_on_time() const { return kind == Kind::kOnTime; }
  };

  Transport(sim::Simulator& simulator, TransportConfig config);

  /// One display tick: emit + packetize + enqueue the next frame under
  /// `channel`, then keep the air busy. Call once per frame interval.
  void on_frame(ChannelState channel);

  /// Settles frames whose deadline lies beyond the session end and builds
  /// the metrics. Call once after the simulator stops.
  void finalize(sim::TimePoint end);

  /// Valid after finalize().
  const TransportMetrics& metrics() const { return metrics_; }

  /// Per-frame fates in id order (ids are dense from 0).
  const std::vector<FrameOutcome>& outcomes() const { return outcomes_; }

  // Live ledger (valid at any time; fuzzed by the property tests).
  std::uint64_t packets_enqueued() const;
  std::uint64_t packets_delivered() const;
  std::uint64_t packets_dropped() const;
  std::uint64_t packets_in_flight() const;
  /// Enqueued packets whose payload reached the display via FEC recovery
  /// instead of a counted arrival — the ledger's fourth bucket.
  std::uint64_t packets_recovered_delivered() const {
    return recovered_credited_;
  }
  /// Speculative alternate-beam copies that were redundant at the receiver
  /// (the primary also arrived, or the copy merely duplicated an earlier
  /// recovery) — the ledger's fifth bucket. Zero while speculation is
  /// never armed.
  std::uint64_t packets_speculative_dup() const { return speculative_dups_; }
  /// Display deadlines missed so far (late + dropped + still-in-flight at
  /// deadline), countable mid-run — the arena's admission controller polls
  /// this each window without waiting for finalize().
  std::uint64_t live_deadline_misses() const { return live_deadline_misses_; }
  /// Frames emitted so far (mid-run counterpart of metrics().frames_emitted).
  std::uint64_t live_frames_emitted() const { return outcomes_.size(); }

  /// enqueued == delivered + dropped + recovered-as-delivered +
  /// speculative-dup + in-flight, at any instant (fuzzed every tick by the
  /// property tests and benches).
  bool ledger_closes() const {
    return packets_enqueued() == packets_delivered() + packets_dropped() +
                                     packets_recovered_delivered() +
                                     packets_speculative_dup() +
                                     packets_in_flight();
  }

  /// One consistent read of the live six-term ledger — what the session
  /// event log snapshots every 20 ms.
  struct LedgerSnapshot {
    std::uint64_t enqueued{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped{0};
    std::uint64_t recovered{0};
    std::uint64_t speculative_dup{0};
    std::uint64_t in_flight{0};
    bool closes() const {
      return enqueued ==
             delivered + dropped + recovered + speculative_dup + in_flight;
    }
  };
  LedgerSnapshot ledger_snapshot() const {
    return {packets_enqueued(),
            packets_delivered(),
            packets_dropped(),
            packets_recovered_delivered(),
            packets_speculative_dup(),
            packets_in_flight()};
  }

  const TxQueue& queue() const { return queue_; }
  const Arq& arq() const { return arq_; }
  const JitterBuffer& jitter() const { return jitter_; }
  const FrameSource& source() const { return source_; }
  const FecEncoder& fec() const { return fec_; }
  const RedundancyController& redundancy() const { return controller_; }
  const TransportConfig& config() const { return config_; }

  /// Back to a freshly constructed state (same config, reseeded RNG
  /// streams), so one Transport can run back-to-back sessions. Only valid
  /// between sessions: the event queue must be drained first (pending
  /// transport events would act on the cleared state). Every pool and
  /// scratch buffer keeps its capacity, so a warmed transport's second
  /// session runs without heap allocation.
  void reset();

  /// Bytes of backing storage the transport and its subsystems currently
  /// own (rings, frame tables, scratch buffers) — the steady-state arena.
  /// Monotone within a session; reset() keeps it.
  std::size_t arena_bytes() const;

 private:
  struct RetxEntry {
    Packet packet;
    bool delivered;  // a lost-ack duplicate (already at the receiver)
  };

  void pump();
  void on_data_done(const Packet& packet, double loss, bool counted,
                    bool speculative, double alt_loss);
  void on_ack(const Packet& packet, bool data_lost, bool ack_lost,
              bool counted);
  void on_display_deadline(std::uint64_t frame_id);
  void on_frame_completed(std::uint64_t frame_id);
  void on_recovered(std::uint64_t frame_id, std::uint32_t seq);
  void drop_frame(std::uint64_t frame_id, FrameOutcome::Kind kind);
  sim::Duration data_airtime(const Packet& packet,
                             const phy::McsEntry& mcs) const;
  bool coin(std::mt19937_64& rng, double probability);
  static std::mt19937_64 derive_stream(std::uint64_t seed,
                                       std::string_view name);

  sim::Simulator& simulator_;
  TransportConfig config_;
  FrameSource source_;
  Packetizer packetizer_;
  TxQueue queue_;
  Arq arq_;
  JitterBuffer jitter_;
  FecEncoder fec_;
  RedundancyController controller_;
  /// Dedicated streams (see DESIGN.md §9.1): data-loss coins keep the
  /// legacy seeding; ack and parity coins draw from independent streams so
  /// toggling FEC (or changing the ack model) never perturbs the data-loss
  /// trajectory of a seeded run.
  std::mt19937_64 rng_;
  std::mt19937_64 ack_rng_;
  std::mt19937_64 parity_rng_;
  /// Alternate-beam coins for speculative copies: a further independent
  /// stream, so arming speculation never perturbs the primary data-loss
  /// trajectory of a seeded run.
  std::mt19937_64 spec_rng_;

  ChannelState channel_{};
  bool air_busy_{false};
  /// Retransmit line, FIFO. A flat vector: the line is bounded by the ARQ
  /// window plus the few holes FEC-first briefly parks, so erase-at-front
  /// moves a handful of entries and never allocates (a deque allocates and
  /// frees blocks as it shifts).
  std::vector<RetxEntry> retx_;
  std::size_t retx_undelivered_{0};
  /// Transmissions outstanding (sent, unresolved) whose packet has not yet
  /// reached the receiver.
  std::size_t unacked_undelivered_{0};
  /// Packets denied retransmission while undelivered (ARQ abandonment).
  std::uint64_t arq_packet_drops_{0};
  /// Undelivered packets purged from the retransmit line on abandonment.
  std::uint64_t retx_purge_drops_{0};
  /// Late duplicates of recovered packets whose credit drop_frame already
  /// wrote off — they land in the dropped bucket (dropped wins).
  std::uint64_t late_dup_drops_{0};
  /// Parity MPDUs lost on air and written off (never retransmitted).
  std::uint64_t parity_loss_drops_{0};
  /// Data packets the receiver rebuilt from parity whose ledger credit is
  /// still pending (the physical copy is queued / on air / unresolved).
  /// Keyed by (frame, seq); erased when credited or when the frame drops.
  /// A sorted flat vector: a few entries at most, and unlike a node-based
  /// set it never allocates once warmed.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> recovered_;
  bool recovered_take(std::uint64_t frame_id, std::uint32_t seq);
  /// Recovered packets whose counted copy was consumed — the ledger's
  /// recovered-as-delivered bucket.
  std::uint64_t recovered_credited_{0};
  /// Speculative dual-path copies: enqueued == dups + drops at every
  /// instant (each copy resolves in the same event that sends it).
  std::uint64_t speculative_enqueued_{0};
  std::uint64_t speculative_dups_{0};
  std::uint64_t speculative_loss_drops_{0};
  /// Armed MPDUs that arrived only via the alternate beam.
  std::uint64_t speculative_saves_{0};
  /// Deadlines missed, counted the instant each frame first misses (kMiss
  /// at its deadline event, or a drop while still pending).
  std::uint64_t live_deadline_misses_{0};
  // Arena accounting across the session (see ChannelState::airtime_share).
  double airtime_share_min_{1.0};
  double interference_db_max_{0.0};
  std::uint64_t interfered_ticks_{0};

  std::vector<FrameOutcome> outcomes_;
  TransportMetrics metrics_;

  // Tick-path scratch, reused every call so the steady state never touches
  // the heap. Each is filled and consumed within one event handler; pump()
  // is never re-entered (handlers run to completion on the event queue).
  std::vector<Packet> packet_scratch_;         // on_frame: packetize + FEC
  std::vector<std::uint64_t> shed_scratch_;    // on_frame: queue overflow
  std::vector<std::uint64_t> stale_scratch_;   // pump: head-of-line drops
  std::vector<double> latency_scratch_;        // finalize: percentiles
};

}  // namespace movr::net
