#include <net/fec.hpp>

#include <algorithm>

namespace movr::net {

std::uint32_t FecEncoder::group_count(std::uint32_t n, FecParams params) {
  if (params.k == 0 || n == 0) {
    return 0;
  }
  const std::uint32_t by_rate = (n + params.k - 1) / params.k;
  return std::min(n,
                  std::max(by_rate, std::max<std::uint32_t>(1, params.depth)));
}

std::uint32_t FecEncoder::group_size(std::uint32_t n, std::uint32_t groups,
                                     std::uint32_t g) {
  if (groups == 0 || g >= groups || g >= n) {
    return 0;
  }
  // Data seq i belongs to group i % groups.
  return (n - g + groups - 1) / groups;
}

void FecEncoder::protect(std::vector<Packet>& packets, FecParams params) {
  const auto n = static_cast<std::uint32_t>(packets.size());
  const std::uint32_t groups = group_count(n, params);
  if (groups == 0) {
    return;
  }
  ++counters_.frames_protected;

  parity_scratch_.assign(groups, 0);
  for (Packet& p : packets) {
    p.fec_groups = groups;
    p.fec_group = p.seq % groups;
    parity_scratch_[p.fec_group] =
        std::max(parity_scratch_[p.fec_group], p.payload_bytes);
  }

  const Packet model = packets.front();  // copy: push_back below reallocates
  packets.reserve(packets.size() + groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    Packet parity;
    parity.frame_id = model.frame_id;
    parity.seq = n + g;  // past the data range; identified by `parity`
    parity.frame_packets = n;
    parity.payload_bytes = parity_scratch_[g];
    parity.capture = model.capture;
    parity.deadline = model.deadline;
    parity.keyframe = model.keyframe;
    parity.parity = true;
    parity.fec_group = g;
    parity.fec_groups = groups;
    packets.push_back(parity);
    ++counters_.parity_packets;
    counters_.parity_bytes += parity.payload_bytes;
  }
}

}  // namespace movr::net
