// Headset-side reassembly and release buffer.
//
// Packets arrive out of order across retransmissions and in duplicate when
// acks are lost; the display wants exactly one copy of each frame, in
// order, at its deadline. This buffer reassembles frames from MPDUs,
// absorbs duplicates, and resolves each frame exactly once at its display
// deadline: complete by then -> released on time; otherwise a deadline
// miss (a later completion is recorded for the latency tail but the frame
// is never released — releasing it would reorder the display stream).
//
// Hard invariants (enforced here, fuzzed in tests/net_transport_property_
// test.cpp): a frame id is never released twice, and released ids are
// strictly increasing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include <net/frame.hpp>
#include <sim/time.hpp>

namespace movr::net {

class JitterBuffer {
 public:
  struct Counters {
    std::uint64_t packets_received{0};  // unique MPDUs accepted (incl. parity)
    std::uint64_t bytes_received{0};    // payload bytes of unique MPDUs
    std::uint64_t duplicates{0};        // MPDUs already held, discarded
    std::uint64_t parity_received{0};   // unique parity MPDUs accepted
    std::uint64_t packets_recovered{0};  // data MPDUs rebuilt from parity
    std::uint64_t frames_completed{0};
    std::uint64_t released_on_time{0};
    std::uint64_t deadline_misses{0};   // incomplete when the display asked
    std::uint64_t late_completions{0};  // completed after their deadline
  };

  /// Resolution of a frame at its display deadline.
  enum class Deadline {
    kReleasedOnTime,
    kMiss,
    kAlreadyResolved,  // duplicate deadline event; no-op
  };

  /// What one MPDU arrival did to the buffer.
  struct Arrival {
    /// The packet was new; duplicates (including the air copy of a data
    /// MPDU already rebuilt from parity) are dropped on the floor.
    bool fresh{false};
    /// Data seq this arrival let the FEC layer reconstruct, if any. At
    /// most one per arrival: an MPDU only ever completes its own group.
    std::optional<std::uint32_t> recovered{};
  };

  const Counters& counters() const { return counters_; }

  /// Accepts one MPDU (data or parity; see the FEC framing on Packet).
  /// When a group's parity is held and exactly one data member is missing,
  /// that member is reconstructed on the spot and reported in `recovered`.
  Arrival on_packet(const Packet& packet, sim::TimePoint now);

  /// Resolves `frame_id` at its display deadline. Must be called in frame
  /// order (deadlines are monotone in id); an out-of-order release attempt
  /// throws std::logic_error — it would reorder the display stream.
  Deadline on_deadline(std::uint64_t frame_id, sim::TimePoint now);

  bool is_complete(std::uint64_t frame_id) const;

  /// Completion latency (completion time - capture), when the frame has
  /// completed (possibly after its deadline).
  std::optional<sim::Duration> completion_latency(std::uint64_t frame_id) const;

  /// Released frame ids in release order — strictly increasing by
  /// construction; exposed so property tests can audit the invariant.
  const std::vector<std::uint64_t>& release_log() const {
    return release_log_;
  }

  /// Back to a freshly constructed state, for reuse across back-to-back
  /// sessions (also resets the release-order watermark). Keeps every
  /// slot's backing storage.
  void reset();

  /// Bytes of backing storage currently owned (slot ring + per-slot
  /// reassembly vectors + release log capacity).
  std::size_t arena_bytes() const;

 private:
  struct FrameState {
    std::uint32_t expected{0};  // data MPDUs (parity not counted)
    std::uint32_t received{0};  // data MPDUs held or reconstructed
    std::vector<bool> have;     // by data seq
    std::uint32_t fec_groups{0};
    std::vector<bool> parity_have;            // by group
    std::vector<std::uint32_t> group_missing;  // data members still absent
    sim::TimePoint capture{};
    std::optional<sim::TimePoint> completed_at;
    bool resolved{false};  // deadline fired
    bool released{false};
  };

  /// Direct-mapped frame slot: frame ids are dense and monotone, so slot
  /// `id % kSlots` holds the id's state and an old occupant is simply
  /// recycled in place (vectors keep their capacity — no allocation).
  /// kSlots spans ~5.7 s at 90 Hz; every query against this buffer
  /// (deadline, straggler arrival, finalize's is_complete sweep) concerns
  /// a frame far younger than that.
  struct Slot {
    std::uint64_t frame_id{0};
    bool occupied{false};
    FrameState state;
  };
  static constexpr std::size_t kSlots = 512;

  /// Resident state for `frame_id`, nullptr when its slot holds another
  /// (always much older) frame or nothing.
  const FrameState* find(std::uint64_t frame_id) const;
  /// Slot for `frame_id`, evicting and recycling any older occupant.
  FrameState& claim(std::uint64_t frame_id);

  void init_frame(FrameState& frame, const Packet& packet);
  std::optional<std::uint32_t> try_recover(FrameState& frame,
                                           std::uint32_t group);
  void check_completed(FrameState& frame, sim::TimePoint now);

  Counters counters_;
  std::vector<Slot> slots_{kSlots};
  std::vector<std::uint64_t> release_log_;
  bool any_released_{false};
  std::uint64_t last_released_{0};
};

}  // namespace movr::net
