#include <net/frame_source.hpp>

#include <algorithm>
#include <cmath>

namespace movr::net {

FrameSource::FrameSource(Config config)
    : config_{config}, rng_{config.seed} {
  // Solve mean frame size so that (gop-1) P-frames + 1 keyframe per GOP
  // integrate to the target bitrate.
  const double mean_bytes = config_.target_mbps * 1e6 / config_.fps / 8.0;
  const double gop = static_cast<double>(std::max(1, config_.gop_length));
  p_bytes_ = mean_bytes * gop / (gop - 1.0 + config_.keyframe_ratio);
}

Frame FrameSource::next(sim::TimePoint capture) {
  Frame frame;
  frame.id = next_id_++;
  frame.capture = capture;
  frame.deadline = capture + config_.latency_budget;
  frame.keyframe =
      config_.gop_length > 0 &&
      frame.id % static_cast<std::uint64_t>(config_.gop_length) == 0;
  const double base = frame.keyframe ? keyframe_bytes() : p_frame_bytes();
  std::uniform_real_distribution<double> wobble{-config_.size_jitter,
                                                config_.size_jitter};
  const double jittered = base * (1.0 + wobble(rng_));
  frame.bytes = static_cast<std::uint64_t>(std::max(1.0, std::round(jittered)));
  return frame;
}

void FrameSource::reset() {
  next_id_ = 0;
  rng_.seed(config_.seed);
}

}  // namespace movr::net
