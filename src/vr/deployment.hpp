// Deployment: the one-object API a downstream integrator starts from.
//
// Owns the simulator, the Bluetooth control channel and the scene; wires
// every reflector's control endpoint; runs the paper's full calibration
// sequence (incidence search -> reflection search -> gain ramp) per
// reflector; and plays sessions against the calibrated system. Everything
// it does can also be done with the lower-level pieces directly (the
// examples show both styles).
#pragma once

#include <memory>
#include <vector>

#include <core/angle_search.hpp>
#include <core/gain_control.hpp>
#include <core/scene.hpp>
#include <sim/control_channel.hpp>
#include <sim/rng.hpp>
#include <sim/simulator.hpp>
#include <vr/motion.hpp>
#include <vr/session.hpp>

namespace movr::vr {

class Deployment {
 public:
  struct Config {
    sim::ControlChannel::Config bluetooth{};
    /// Sweep resolution for both calibration phases, degrees.
    double search_step_deg{1.0};
    std::uint64_t seed{2016};
  };

  Deployment(core::Scene scene, Config config);
  explicit Deployment(core::Scene scene) : Deployment{std::move(scene), Config{}} {}

  core::Scene& scene() { return scene_; }
  sim::Simulator& simulator() { return simulator_; }
  sim::ControlChannel& bluetooth() { return control_; }

  /// Registers a reflector added to the scene AFTER construction on the
  /// control channel. (Reflectors present at construction are wired
  /// automatically.)
  void attach_reflector(core::MovrReflector& reflector);

  struct ReflectorCalibration {
    core::IncidenceResult incidence;
    core::ReflectionResult reflection;
    core::GainController::Result gain;
  };
  struct CalibrationReport {
    std::vector<ReflectorCalibration> reflectors;
    sim::Duration total{0};
    bool all_usable{true};
  };

  /// Runs the paper's Section 4 sequence for every reflector, blocking
  /// until the simulator drains. Call once at install time.
  CalibrationReport calibrate();

  /// Plays a session with the full MoVR strategy (link manager + pose-aided
  /// retargeting). `motion` and `script` may be null.
  QoeReport play(PlayerMotion* motion, const BlockageScript* script,
                 Session::Config session_config);

 private:
  core::Scene scene_;
  Config config_;
  sim::RngRegistry rngs_;
  sim::Simulator simulator_;
  sim::ControlChannel control_;
};

}  // namespace movr::vr
