// A VR play session: frames at 90 Hz over a live mmWave link, with player
// motion and scripted blockages, under a pluggable link strategy.
//
// The strategy abstraction is what lets the benches replay the *same*
// session under MoVR and under the baselines (fixed beam, NLOS beam
// switching) and compare glitch counts frame-for-frame.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <string_view>
#include <utility>
#include <vector>

#include <core/link_manager.hpp>
#include <core/scene.hpp>
#include <log/recorder.hpp>
#include <net/transport.hpp>
#include <phy/rate_adapter.hpp>
#include <rf/units.hpp>
#include <sim/burst_channel.hpp>
#include <sim/fault_injector.hpp>
#include <sim/simulator.hpp>
#include <vr/motion.hpp>
#include <vr/qoe.hpp>
#include <vr/requirements.hpp>

namespace movr::vr {

/// Decides, each frame, how the link is steered; returns the true SNR the
/// headset sees that frame.
class LinkStrategy {
 public:
  virtual ~LinkStrategy() = default;
  virtual rf::Decibels on_frame() = 0;
  virtual std::string_view name() const = 0;
  /// When true, rate control pins the most robust (lowest) MCS this frame
  /// instead of chasing throughput — the degraded-mode contract.
  virtual bool pin_lowest_rate() const { return false; }
  /// When true, the link is in a correlated-loss window (handover pending,
  /// degraded mode): the session forces the burst channel bad and warns
  /// the transport's adaptive FEC via ChannelState::stressed.
  virtual bool link_stressed() const { return false; }
  /// When true, a forecast risk window is open but nothing has failed yet:
  /// the transport's adaptive FEC pre-arms (ChannelState::predicted_stress)
  /// — but the burst channel is NOT forced bad; a belief is not physics.
  virtual bool predicted_stress() const { return false; }
  /// True SNR of the alternate beam to speculatively receive on this frame
  /// (nullopt = no speculation). Valid after on_frame(); the session turns
  /// it into ChannelState::{speculative, alt_loss} at the chosen MCS.
  virtual std::optional<rf::Decibels> speculative_alt_snr() {
    return std::nullopt;
  }
  /// Predictive link-control counters, for strategies that forecast
  /// (PredictiveMovrStrategy); nullopt for reactive strategies.
  virtual std::optional<PredictiveLinkStats> predictive_stats() const {
    return std::nullopt;
  }
};

/// The full MoVR system: headset SNR tracking, handover to reflectors on
/// blockage, pose-aided retargeting, fallback to direct when clear.
class MovrStrategy final : public LinkStrategy {
 public:
  MovrStrategy(sim::Simulator& simulator, core::Scene& scene,
               std::mt19937_64 rng)
      : manager_{simulator, scene, rng} {}
  MovrStrategy(sim::Simulator& simulator, core::Scene& scene,
               std::mt19937_64 rng, core::LinkManager::Config config)
      : manager_{simulator, scene, rng, config} {}

  rf::Decibels on_frame() override { return manager_.on_frame(); }
  std::string_view name() const override { return "movr"; }
  bool pin_lowest_rate() const override {
    return manager_.mode() == core::LinkManager::Mode::kDegraded;
  }
  bool link_stressed() const override {
    const core::LinkManager::Mode mode = manager_.mode();
    return mode == core::LinkManager::Mode::kHandoverPending ||
           mode == core::LinkManager::Mode::kDegraded;
  }

  core::LinkManager& manager() { return manager_; }
  const core::LinkManager& manager() const { return manager_; }

 private:
  core::LinkManager manager_;
};

class Session {
 public:
  struct Config {
    sim::Duration duration{std::chrono::seconds{10}};
    DisplayRequirements display{kHtcVive};
    /// When true, frames are rated by a closed-loop 802.11ad rate adapter
    /// fed with noisy SNR estimates (and pay packet loss when it lags or
    /// overshoots) instead of the oracle rate-at-true-SNR mapping.
    bool realistic_rate_control{false};
    std::uint64_t rate_control_seed{1};
    /// Optional fault schedule: when set, the report carries one
    /// FaultRecovery entry per timeline fault (glitches inside the window,
    /// time until the link steadily delivered again).
    const sim::FaultInjector* faults{nullptr};
    /// Consecutive delivered frames that count as "recovered".
    int recovery_good_frames{3};
    /// Opt-in frame transport data-plane: when set, frames are packetized,
    /// queued against their display deadlines, ARQ'd over the lossy link
    /// and reassembled in a headset-side jitter buffer — a frame is
    /// "delivered" when it is released at its deadline, and the report
    /// carries net::TransportMetrics (latency percentiles, deadline
    /// misses, retransmits, drops). When unset (the default) the legacy
    /// binary delivered/glitched model runs, bit-identical to before.
    /// Source fps / bitrate / latency budget fields left at zero are
    /// filled from `display`.
    std::optional<net::TransportConfig> transport;
    /// Opt-in burst-loss channel model (transport path only): instead of
    /// stacking a flat `fault_extra_loss` during fault windows, a
    /// Gilbert–Elliott chain (sim/burst_channel.hpp) generates the extra
    /// loss, stepped once per tick and forced into its bad state while the
    /// link is stressed (fault window open, strategy reports handover
    /// pending / degraded). The report carries the chain's counters.
    std::optional<sim::BurstChannel::Config> burst_loss;
    /// Optional hardened control plane (core/config_epoch.hpp): when set,
    /// the report carries its incident counters (partitions, divergences,
    /// reconciliations, safe-mode entries) alongside the QoE metrics. The
    /// session does not drive it — it runs on its own simulator events.
    const core::ControlPlane* control_plane{nullptr};

    // --- arena hooks (multi-user coordination; see arena::Coordinator) --
    // Each hook is polled exactly once per tick, in this order, after the
    // strategy's on_frame. All unset = a standalone session, bit-identical
    // to before the hooks existed. When any is set the report carries
    // QoeReport::arena.
    /// Mutual-interference SNR penalty (dB, >= 0) for this tick; subtracted
    /// from the strategy's true SNR before rate selection and PER.
    std::function<double()> snr_penalty_db;
    /// Admission/fairness cap on the MCS index this tick. Values at or past
    /// the top of the table leave selection alone; -1 mutes the link (an
    /// evicted user: nothing flies, the frame glitches).
    std::function<int()> mcs_index_limit;
    /// Fraction (0, 1] of the shared AP's airtime granted this tick; fed to
    /// the transport (serialization stretches by 1/share) and, under the
    /// legacy binary model, scales the deliverable rate.
    std::function<double()> airtime_share;

    /// Session event-log sink: when set (and the transport path is on) the
    /// session snapshots the six-term packet ledger every 20 ms plus a
    /// final post-finalize snapshot. Pure reads — recording consumes no
    /// session RNG, so a logged run is bit-identical to an unlogged one.
    log::Recorder* recorder{nullptr};
  };

  /// `motion` and `script` may be null (static player / no blockage).
  Session(sim::Simulator& simulator, core::Scene& scene,
          LinkStrategy& strategy, Motion* motion,
          const BlockageScript* script, Config config);

  /// Runs the whole session on the simulator and returns the QoE report.
  /// Equivalent to start(); run_until(end); finish() — kept as the
  /// single-session entry point.
  QoeReport run();

  /// Schedules the first tick; the caller drives the simulator. Used by
  /// arena::Coordinator to interleave N sessions on one event queue.
  void start();
  /// Settles accounting after the simulator reached the session end and
  /// returns the report. Call exactly once, after start().
  QoeReport finish();

  /// End of this session's tick schedule (valid after start()).
  sim::TimePoint end_time() const { return start_ + config_.duration; }

  /// Rate (Mbps) of the MCS the last tick actually flew, 0 while the link
  /// is down/muted. The arena's admission controller samples this.
  double last_mcs_rate_mbps() const { return last_mcs_rate_mbps_; }

  /// The live transport pipeline, nullptr when the session runs the legacy
  /// binary model. Exposed so benches can audit the packet ledger mid-run.
  const net::Transport* transport() const { return transport_.get(); }

 private:
  void tick();
  void snapshot_tick();
  void record_transport_snapshot(bool final_snapshot);

  sim::Simulator& simulator_;
  core::Scene& scene_;
  LinkStrategy& strategy_;
  Motion* motion_;
  const BlockageScript* script_;
  Config config_;

  QoeReport report_;
  sim::TimePoint start_{};
  std::uint64_t target_frames_{0};
  double snr_sum_{0.0};
  double rate_sum_{0.0};
  std::uint64_t current_stall_{0};
  phy::RateAdapter adapter_;
  std::mt19937_64 rate_rng_;
  /// (frame time, delivered) log, kept only when a fault injector is
  /// attached; scanned once post-run to fill QoeReport::fault_recovery.
  std::vector<std::pair<sim::TimePoint, bool>> frame_log_;

  /// Transport pipeline, live only when config_.transport is set.
  std::unique_ptr<net::Transport> transport_;
  /// Burst-loss chain, live only when config_.burst_loss is set.
  std::unique_ptr<sim::BurstChannel> burst_;

  /// Per-tick arena hook values (set once per tick; defaults = standalone).
  int tick_mcs_limit_{std::numeric_limits<int>::max()};
  double tick_share_{1.0};
  double last_mcs_rate_mbps_{0.0};
  /// Live only when any arena hook is wired; folded into report_.arena.
  struct ArenaAccounting {
    std::uint64_t interfered_frames{0};
    double interference_sum_db{0.0};
    double interference_max_db{0.0};
    std::uint64_t mcs_capped_frames{0};
    std::uint64_t muted_frames{0};
    double min_share{1.0};
  };
  std::optional<ArenaAccounting> arena_;

  void close_stall();
  void compute_fault_recovery();
  /// Frame outcome under the configured rate-control model.
  std::pair<double, bool> rate_frame(rf::Decibels true_snr);
  /// MCS selection + its per-MPDU loss at the true SNR (transport path).
  std::pair<const phy::McsEntry*, double> select_mcs(rf::Decibels true_snr);
  /// Folds the transport's per-frame outcomes into the QoE report.
  void account_transport_outcomes();
};

}  // namespace movr::vr
