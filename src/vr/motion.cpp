#include <vr/motion.hpp>

#include <algorithm>

#include <channel/obstacle.hpp>

namespace movr::vr {

PlayerMotion::PlayerMotion(const channel::Room& room, geom::Vec2 start,
                           std::uint64_t seed, Config config)
    : room_{room}, config_{config}, rng_{seed}, from_{start}, to_{start} {
  plan_next_leg();
}

void PlayerMotion::plan_next_leg() {
  from_ = to_;
  to_ = room_.random_interior_point(rng_, config_.wall_margin_m);
  const double dist = geom::distance(from_, to_);
  leg_travel_ = sim::from_seconds(dist / config_.speed_mps);
  leg_total_ = leg_travel_ + config_.pause;
}

geom::Vec2 PlayerMotion::position_at(sim::TimePoint t) {
  while (t - leg_start_ >= leg_total_) {
    leg_start_ += leg_total_;
    plan_next_leg();
  }
  const sim::Duration into = t - leg_start_;
  if (into >= leg_travel_ || leg_travel_.count() == 0) {
    return to_;  // pausing at the waypoint
  }
  const double f = static_cast<double>(into.count()) /
                   static_cast<double>(leg_travel_.count());
  return from_ + (to_ - from_) * f;
}

PacingMotion::PacingMotion(geom::Vec2 a, geom::Vec2 b, Config config)
    : a_{a}, b_{b}, config_{config} {
  const double dist = geom::distance(a_, b_);
  travel_ = sim::from_seconds(dist / config_.speed_mps);
  cycle_ = 2 * (travel_ + config_.pause);
}

geom::Vec2 PacingMotion::position_at(sim::TimePoint t) {
  if (cycle_.count() == 0) {
    return a_;
  }
  sim::Duration into{t.count() % cycle_.count()};
  // Leg 1: A -> B, pause at B, leg 2: B -> A, pause at A.
  if (into < travel_) {
    const double f = static_cast<double>(into.count()) /
                     static_cast<double>(travel_.count());
    return a_ + (b_ - a_) * f;
  }
  into -= travel_;
  if (into < config_.pause) {
    return b_;
  }
  into -= config_.pause;
  if (into < travel_) {
    const double f = static_cast<double>(into.count()) /
                     static_cast<double>(travel_.count());
    return b_ + (a_ - b_) * f;
  }
  return a_;
}

bool BlockageScript::active_at(sim::TimePoint t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [t](const BlockageEvent& e) {
                       return t >= e.start && t < e.start + e.duration;
                     });
}

void BlockageScript::apply(channel::Room& room, sim::TimePoint t,
                           geom::Vec2 headset, geom::Vec2 ap) const {
  room.remove_obstacles("hand");
  room.remove_obstacles("head");
  room.remove_obstacles("person");
  for (const BlockageEvent& event : events_) {
    if (t < event.start || t >= event.start + event.duration) {
      continue;
    }
    switch (event.kind) {
      case BlockageEvent::Kind::kHand:
        room.add_obstacle(channel::make_hand(headset, ap - headset));
        break;
      case BlockageEvent::Kind::kHead:
        room.add_obstacle(channel::make_head(headset, ap - headset));
        break;
      case BlockageEvent::Kind::kPersonCrossing: {
        const double f = static_cast<double>((t - event.start).count()) /
                         static_cast<double>(event.duration.count());
        const geom::Vec2 pos =
            event.path_from + (event.path_to - event.path_from) * f;
        room.add_obstacle(channel::make_person(pos));
        break;
      }
    }
  }
}

BlockageScript periodic_hand_raises(sim::TimePoint first, sim::Duration up,
                                    sim::Duration period,
                                    sim::TimePoint end) {
  std::vector<BlockageEvent> events;
  for (sim::TimePoint t = first; t < end; t += period) {
    BlockageEvent event;
    event.kind = BlockageEvent::Kind::kHand;
    event.start = t;
    event.duration = up;
    events.push_back(event);
  }
  return BlockageScript{std::move(events)};
}

}  // namespace movr::vr
