#include <vr/predictive.hpp>

#include <channel/path.hpp>

namespace movr::vr {

bool PredictiveMovrStrategy::los_actually_blocked() const {
  const geom::Vec2 ap = scene_.ap().node().position();
  const geom::Vec2 headset = scene_.headset().node().position();
  for (const channel::Path& path : scene_.paths_between(ap, headset)) {
    if (path.is_los()) {
      return path.is_blocked(config_.forecaster.blocked_threshold_db);
    }
  }
  return true;
}

rf::Decibels PredictiveMovrStrategy::on_frame() {
  const sim::TimePoint now = simulator_.now();
  alt_.reset();

  // Feed the pose as the tracking system measured it: any injected bias
  // rides along, and forecasts made from it are honestly wrong.
  forecaster_.on_pose(now, scene_.headset().node().position() + pose_bias_);
  const auto window = forecaster_.forecast(scene_, now);
  if (window.has_value()) {
    manager_.on_risk_window(*window);
  }

  // Misprediction accounting against ground truth (evaluation only; no
  // protocol decision reads this).
  if (manager_.risk_active()) {
    if (!window_open_) {
      window_open_ = true;
      window_hit_ = false;
    }
    if (los_actually_blocked()) {
      window_hit_ = true;
    }
  } else if (window_open_) {
    window_open_ = false;
    if (!window_hit_) {
      ++mispredictions_;
    }
  }

  // Offer the alternate beam while the window is open; the aperture split
  // costs the serving path its penalty for exactly those frames.
  if (manager_.risk_active()) {
    alt_ = manager_.speculative_alt_snr();
  }
  rf::Decibels snr = manager_.on_frame();
  if (alt_.has_value()) {
    snr -= config_.split_penalty;
  }
  return snr;
}

std::optional<PredictiveLinkStats> PredictiveMovrStrategy::predictive_stats()
    const {
  PredictiveLinkStats stats;
  stats.risk_windows = manager_.stats().risk_windows;
  stats.proactive_handovers = manager_.stats().proactive_handovers;
  // A window still open at session end counts against the forecaster only
  // if it never hit.
  stats.mispredictions =
      mispredictions_ + ((window_open_ && !window_hit_) ? 1 : 0);
  stats.forecasts = forecaster_.counters().forecasts;
  stats.chaos_garbled = forecaster_.counters().chaos_garbled;
  return stats;
}

}  // namespace movr::vr
