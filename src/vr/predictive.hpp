// The predictive MoVR strategy: MovrStrategy plus an occlusion forecaster.
//
// Each frame it feeds the headset pose (as the tracking system measured it
// — an injected bias rides along, see add_pose_bias_drift) to the
// forecaster, hands any risk window to the LinkManager's proactive path,
// and, while a window is open, offers the session an alternate beam for
// speculative dual-path reception. Splitting the receive aperture across
// two beams is not free: the serving path pays `split_penalty_db` while
// speculation is armed, which is exactly what makes a wrong forecast
// genuinely (but boundedly) costly — the misprediction containment gates
// in bench/predictive.cpp measure that cost against the reactive baseline.
#pragma once

#include <optional>
#include <random>
#include <string_view>

#include <core/link_manager.hpp>
#include <core/occlusion_forecaster.hpp>
#include <core/scene.hpp>
#include <rf/units.hpp>
#include <sim/simulator.hpp>
#include <vr/qoe.hpp>
#include <vr/session.hpp>

namespace movr::vr {

class PredictiveMovrStrategy final : public LinkStrategy {
 public:
  struct Config {
    core::LinkManager::Config manager{};
    core::OcclusionForecaster::Config forecaster{};
    /// SNR cost of splitting the headset's receive aperture across the
    /// serving and speculative beams while a risk window is armed.
    rf::Decibels split_penalty{3.0};
  };

  PredictiveMovrStrategy(sim::Simulator& simulator, core::Scene& scene,
                         std::mt19937_64 rng)
      : PredictiveMovrStrategy{simulator, scene, rng, Config{}} {}
  PredictiveMovrStrategy(sim::Simulator& simulator, core::Scene& scene,
                         std::mt19937_64 rng, Config config)
      : simulator_{simulator},
        scene_{scene},
        config_{config},
        manager_{simulator, scene, rng, config.manager},
        forecaster_{config.forecaster} {}

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "movr+predict"; }
  bool pin_lowest_rate() const override {
    return manager_.mode() == core::LinkManager::Mode::kDegraded;
  }
  bool link_stressed() const override {
    const core::LinkManager::Mode mode = manager_.mode();
    return mode == core::LinkManager::Mode::kHandoverPending ||
           mode == core::LinkManager::Mode::kDegraded;
  }
  bool predicted_stress() const override { return manager_.risk_active(); }
  std::optional<rf::Decibels> speculative_alt_snr() override { return alt_; }
  std::optional<PredictiveLinkStats> predictive_stats() const override;

  /// Constant offset added to every pose sample fed to the forecaster —
  /// the handle vr::add_pose_bias_drift turns into a sensor fault.
  void set_pose_bias(geom::Vec2 bias) { pose_bias_ = bias; }

  core::LinkManager& manager() { return manager_; }
  const core::LinkManager& manager() const { return manager_; }
  const core::OcclusionForecaster& forecaster() const { return forecaster_; }

 private:
  /// Ground truth: is the direct AP->headset LOS actually obstructed now?
  bool los_actually_blocked() const;

  sim::Simulator& simulator_;
  core::Scene& scene_;
  Config config_;
  core::LinkManager manager_;
  core::OcclusionForecaster forecaster_;
  geom::Vec2 pose_bias_{};
  /// Alternate-beam SNR offered to the session this frame (reset each
  /// frame; set only while a risk window is open and an alternate exists).
  std::optional<rf::Decibels> alt_;
  /// Misprediction tracking: a window that closes without the LOS ever
  /// actually blocking was a false alarm.
  bool window_open_{false};
  bool window_hit_{false};
  int mispredictions_{0};
};

}  // namespace movr::vr
