#include <vr/session.hpp>

#include <algorithm>
#include <utility>

#include <phy/mcs.hpp>
#include <rf/measurement.hpp>

namespace movr::vr {

Session::Session(sim::Simulator& simulator, core::Scene& scene,
                 LinkStrategy& strategy, Motion* motion,
                 const BlockageScript* script, Config config)
    : simulator_{simulator},
      scene_{scene},
      strategy_{strategy},
      motion_{motion},
      script_{script},
      config_{config},
      rate_rng_{config.rate_control_seed} {
  report_.min_snr_db = 1e9;
  if (config_.transport.has_value()) {
    net::TransportConfig transport = *config_.transport;
    transport.source.fps = config_.display.refresh_hz;
    transport.source.latency_budget = config_.display.latency_budget();
    if (transport.source.target_mbps <= 0.0) {
      transport.source.target_mbps = config_.display.required_mbps();
    }
    transport_ = std::make_unique<net::Transport>(simulator_, transport);
    if (config_.burst_loss.has_value()) {
      burst_ = std::make_unique<sim::BurstChannel>(*config_.burst_loss);
    }
  }
  if (config_.snr_penalty_db || config_.mcs_index_limit ||
      config_.airtime_share) {
    arena_.emplace();
  }
}

std::pair<const phy::McsEntry*, double> Session::select_mcs(
    rf::Decibels true_snr) {
  const phy::McsEntry* mcs = nullptr;
  if (strategy_.pin_lowest_rate()) {
    mcs = &phy::mcs_table().front();
  } else if (!config_.realistic_rate_control) {
    mcs = phy::best_mcs(true_snr);
  } else {
    const rf::Decibels estimate =
        rf::estimate_snr(true_snr, /*symbols=*/16, rate_rng_);
    mcs = adapter_.on_estimate(estimate);
  }
  // Admission cap: an overloaded room fences how far up the ladder this
  // user may rate-chase; -1 mutes an evicted user outright.
  if (mcs != nullptr && tick_mcs_limit_ < mcs->index) {
    if (tick_mcs_limit_ < 0) {
      mcs = nullptr;
      if (arena_.has_value()) {
        ++arena_->muted_frames;
      }
    } else {
      const phy::McsEntry* capped = nullptr;
      for (const phy::McsEntry& entry : phy::mcs_table()) {
        if (entry.index <= tick_mcs_limit_) {
          capped = &entry;
        }
      }
      mcs = capped;
      if (arena_.has_value()) {
        ++arena_->mcs_capped_frames;
      }
    }
  }
  const double per =
      mcs != nullptr ? phy::packet_error_rate(*mcs, true_snr) : 1.0;
  return {mcs, per};
}

std::pair<double, bool> Session::rate_frame(rf::Decibels true_snr) {
  if (strategy_.pin_lowest_rate()) {
    // Degraded mode: robustness over throughput. The most robust MCS keeps
    // *something* flowing; the frame still glitches if even that rate is
    // below the display's requirement — that is what "degraded" means.
    const phy::McsEntry& lowest = phy::mcs_table().front();
    const double per = phy::packet_error_rate(lowest, true_snr);
    const double frame_loss = std::min(1.0, per * 20.0);
    std::uniform_real_distribution<double> coin{0.0, 1.0};
    const bool survives = coin(rate_rng_) >= frame_loss;
    return {lowest.rate_mbps,
            survives && lowest.rate_mbps >= config_.display.required_mbps()};
  }
  if (!config_.realistic_rate_control) {
    const double rate = phy::rate_mbps(true_snr);
    return {rate, rate >= config_.display.required_mbps()};
  }
  // Closed loop: the adapter sees a noisy estimate; the chosen MCS then
  // faces the *true* channel. A frame spans many PHY packets, so even a
  // modest packet error rate costs the frame.
  const rf::Decibels estimate =
      rf::estimate_snr(true_snr, /*symbols=*/16, rate_rng_);
  const phy::McsEntry* mcs = adapter_.on_estimate(estimate);
  if (mcs == nullptr) {
    return {0.0, false};
  }
  const double per = phy::packet_error_rate(*mcs, true_snr);
  const double frame_loss = std::min(1.0, per * 20.0);
  std::uniform_real_distribution<double> coin{0.0, 1.0};
  const bool survives = coin(rate_rng_) >= frame_loss;
  return {mcs->rate_mbps,
          survives && mcs->rate_mbps >= config_.display.required_mbps()};
}

void Session::close_stall() {
  if (current_stall_ > 0) {
    ++report_.stall_events;
    const auto stall_time =
        config_.display.frame_interval() *
        static_cast<std::int64_t>(current_stall_);
    report_.longest_stall = std::max(report_.longest_stall, stall_time);
    current_stall_ = 0;
  }
}

void Session::tick() {
  const sim::TimePoint now = simulator_.now();
  const sim::TimePoint session_time = now - start_;

  // 1. The world moves.
  if (motion_ != nullptr) {
    scene_.headset().node().set_position(motion_->position_at(session_time));
  }
  if (script_ != nullptr) {
    script_->apply(scene_.room(), session_time,
                   scene_.headset().node().position(),
                   scene_.ap().node().position());
  }

  // 2. The link strategy reacts and the frame is sent.
  rf::Decibels snr = strategy_.on_frame();

  // Arena hooks, each polled exactly once per tick so a coordinator can
  // account per-tick state. Unset hooks leave the standalone defaults —
  // subtracting 0.0 dB and dividing airtime by 1.0 are bit-exact no-ops.
  double penalty_db = 0.0;
  if (config_.snr_penalty_db) {
    penalty_db = config_.snr_penalty_db();
    snr -= rf::Decibels{penalty_db};
  }
  tick_mcs_limit_ = config_.mcs_index_limit
                        ? config_.mcs_index_limit()
                        : std::numeric_limits<int>::max();
  tick_share_ = config_.airtime_share ? config_.airtime_share() : 1.0;
  if (arena_.has_value()) {
    if (penalty_db > 0.0) {
      ++arena_->interfered_frames;
      arena_->interference_sum_db += penalty_db;
      arena_->interference_max_db =
          std::max(arena_->interference_max_db, penalty_db);
    }
    arena_->min_share = std::min(arena_->min_share, tick_share_);
  }

  if (transport_ != nullptr) {
    // Transport path: the frame enters the data-plane; whether the player
    // saw it is settled by queueing, ARQ and the jitter buffer, and folded
    // into the report post-run (account_transport_outcomes).
    const auto [mcs, per] = select_mcs(snr);
    net::ChannelState channel;
    channel.mcs = mcs;
    channel.packet_loss = per;
    channel.airtime_share = tick_share_;
    channel.interference_db = penalty_db;
    const bool fault_active =
        config_.faults != nullptr && config_.faults->active_count(now) > 0;
    channel.stressed = fault_active || strategy_.link_stressed();
    channel.predicted_stress = strategy_.predicted_stress();
    if (mcs != nullptr) {
      // Speculative dual-path reception: while the strategy offers an
      // alternate beam (forecast risk window open), each data MPDU also
      // flies that beam at its own loss rate. Beliefs arm speculation;
      // only real stress (below) forces the burst channel bad.
      const auto alt = strategy_.speculative_alt_snr();
      if (alt.has_value()) {
        channel.speculative = true;
        channel.alt_loss = phy::packet_error_rate(*mcs, *alt);
      }
    }
    if (burst_ != nullptr) {
      // Burst model: the chain evolves on its own clock, but world events
      // (fault window, handover, degraded link) pin it bad — blockage
      // becomes correlated loss rather than a flat i.i.d. penalty.
      burst_->step();
      if (channel.stressed) {
        burst_->force_bad();
      }
      channel.extra_loss = burst_->loss();
    } else if (fault_active) {
      channel.extra_loss = config_.transport->fault_extra_loss;
    }
    transport_->on_frame(channel);
    ++report_.frames;
    snr_sum_ += snr.value();
    last_mcs_rate_mbps_ = mcs != nullptr ? mcs->rate_mbps : 0.0;
    rate_sum_ += mcs != nullptr ? mcs->rate_mbps : 0.0;
    report_.min_snr_db = std::min(report_.min_snr_db, snr.value());
    if (report_.frames < target_frames_) {
      simulator_.at(now + config_.display.frame_interval(), [this] { tick(); });
    }
    return;
  }

  auto [rate, delivered] = rate_frame(snr);
  if (tick_mcs_limit_ < 0) {
    // Evicted: nothing flies this tick.
    rate = 0.0;
    delivered = false;
    if (arena_.has_value()) {
      ++arena_->muted_frames;
    }
  } else if (tick_share_ < 1.0 &&
             rate * tick_share_ < config_.display.required_mbps()) {
    // The legacy binary model's share analogue: the deliverable fraction
    // of the rate must still clear the display's requirement.
    delivered = false;
  }
  last_mcs_rate_mbps_ = rate;

  // 3. QoE accounting.
  ++report_.frames;
  snr_sum_ += snr.value();
  rate_sum_ += rate;
  report_.min_snr_db = std::min(report_.min_snr_db, snr.value());
  if (config_.faults != nullptr) {
    frame_log_.emplace_back(now, delivered);
  }
  if (delivered) {
    close_stall();
  } else {
    ++report_.glitched_frames;
    ++current_stall_;
  }

  if (report_.frames < target_frames_) {
    simulator_.at(now + config_.display.frame_interval(), [this] { tick(); });
  }
}

QoeReport Session::run() {
  start();
  simulator_.run_until(start_ + config_.duration);
  return finish();
}

void Session::start() {
  start_ = simulator_.now();
  target_frames_ = static_cast<std::uint64_t>(
      config_.duration.count() / config_.display.frame_interval().count());
  simulator_.after(sim::Duration::zero(), [this] { tick(); });
  if (config_.recorder != nullptr && config_.transport.has_value()) {
    simulator_.after(std::chrono::milliseconds{20},
                     [this] { snapshot_tick(); });
  }
}

void Session::record_transport_snapshot(bool final_snapshot) {
  const net::Transport::LedgerSnapshot ledger = transport_->ledger_snapshot();
  config_.recorder->record(
      log::EventKind::kSnapshotTransport,
      {{"enqueued", static_cast<std::int64_t>(ledger.enqueued)},
       {"delivered", static_cast<std::int64_t>(ledger.delivered)},
       {"dropped", static_cast<std::int64_t>(ledger.dropped)},
       {"recovered", static_cast<std::int64_t>(ledger.recovered)},
       {"spec_dup", static_cast<std::int64_t>(ledger.speculative_dup)},
       {"in_flight", static_cast<std::int64_t>(ledger.in_flight)},
       {"final", final_snapshot ? 1 : 0}});
}

void Session::snapshot_tick() {
  if (transport_ == nullptr || simulator_.now() >= end_time()) {
    return;
  }
  record_transport_snapshot(/*final_snapshot=*/false);
  simulator_.after(std::chrono::milliseconds{20}, [this] { snapshot_tick(); });
}

QoeReport Session::finish() {
  if (transport_ != nullptr) {
    transport_->finalize(start_ + config_.duration);
    account_transport_outcomes();
    report_.transport = transport_->metrics();
    if (config_.recorder != nullptr) {
      record_transport_snapshot(/*final_snapshot=*/true);
    }
  }
  if (burst_ != nullptr) {
    report_.burst = burst_->counters();
  }
  close_stall();
  if (report_.frames > 0) {
    report_.mean_snr_db = snr_sum_ / static_cast<double>(report_.frames);
    report_.mean_rate_mbps = rate_sum_ / static_cast<double>(report_.frames);
  } else {
    report_.min_snr_db = 0.0;
  }
  if (config_.faults != nullptr) {
    compute_fault_recovery();
  }
  if (config_.control_plane != nullptr) {
    report_.control_plane = config_.control_plane->incidents();
  }
  report_.predictive = strategy_.predictive_stats();
  if (arena_.has_value()) {
    ArenaLinkStats stats;
    stats.interfered_frames = arena_->interfered_frames;
    stats.mean_interference_db =
        report_.frames > 0
            ? arena_->interference_sum_db / static_cast<double>(report_.frames)
            : 0.0;
    stats.max_interference_db = arena_->interference_max_db;
    stats.mcs_capped_frames = arena_->mcs_capped_frames;
    stats.muted_frames = arena_->muted_frames;
    stats.min_airtime_share = arena_->min_share;
    report_.arena = stats;
  }
  return report_;
}

void Session::account_transport_outcomes() {
  using Kind = net::Transport::FrameOutcome::Kind;
  for (const auto& outcome : transport_->outcomes()) {
    // A frame still unresolved at session end is not a glitch the player
    // saw; everything else either released on time or missed the display.
    const bool delivered =
        outcome.kind == Kind::kOnTime || outcome.kind == Kind::kUnresolved;
    if (config_.faults != nullptr) {
      frame_log_.emplace_back(outcome.capture, delivered);
    }
    if (delivered) {
      close_stall();
    } else {
      ++report_.glitched_frames;
      ++current_stall_;
    }
  }
}

void Session::compute_fault_recovery() {
  const sim::TimePoint session_end = start_ + config_.duration;
  for (const auto& fault : config_.faults->timeline()) {
    FaultRecovery recovery;
    recovery.fault = fault.name;
    recovery.start = fault.start;
    recovery.end = fault.end;

    // Glitches attributed to the fault: frames inside its window (pulses
    // get the frame interval as a minimal window).
    const sim::TimePoint window_end =
        fault.end > fault.start ? fault.end
                                : fault.start + config_.display.frame_interval();
    int consecutive_good = 0;
    for (const auto& [at, delivered] : frame_log_) {
      if (at >= fault.start && at < window_end && !delivered) {
        ++recovery.glitched_frames;
      }
      if (at < fault.start || recovery.recovered) {
        continue;
      }
      consecutive_good = delivered ? consecutive_good + 1 : 0;
      if (consecutive_good >= config_.recovery_good_frames) {
        // Recovery is dated to the first frame of the good run.
        const sim::TimePoint recovered_at =
            at - config_.display.frame_interval() *
                     static_cast<std::int64_t>(config_.recovery_good_frames - 1);
        recovery.time_to_recover =
            recovered_at > fault.start ? recovered_at - fault.start
                                       : sim::Duration::zero();
        recovery.recovered = true;
      }
    }
    if (!recovery.recovered) {
      recovery.time_to_recover = session_end - fault.start;
    }
    report_.fault_recovery.push_back(std::move(recovery));
  }
}

}  // namespace movr::vr
