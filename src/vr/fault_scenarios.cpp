#include <vr/fault_scenarios.hpp>

#include <memory>
#include <random>
#include <utility>
#include <vector>

#include <geom/vec2.hpp>

namespace movr::vr {

std::size_t add_obstacle_storm(sim::FaultInjector& injector,
                               channel::Room& room,
                               const ObstacleStormConfig& config) {
  struct Walker {
    geom::Vec2 from;
    geom::Vec2 to;
  };
  // Seeded at schedule time so the storm is replayable; the walkers' paths
  // are fixed straight lines, only their progress is animated by the sweep.
  auto walkers = std::make_shared<std::vector<Walker>>();
  std::mt19937_64 rng{config.seed};
  for (int i = 0; i < config.people; ++i) {
    walkers->push_back(Walker{room.random_interior_point(rng),
                              room.random_interior_point(rng)});
  }
  const std::string label = config.label;
  return injector.inject_sweep(
      "obstacle_storm(" + std::to_string(config.people) + ")", config.start,
      config.duration, config.tick,
      [&room, walkers, label](double progress) {
        room.remove_obstacles(label);
        for (const Walker& w : *walkers) {
          const geom::Vec2 at{w.from.x + (w.to.x - w.from.x) * progress,
                              w.from.y + (w.to.y - w.from.y) * progress};
          auto person = channel::make_person(at);
          person.label = label;
          room.add_obstacle(std::move(person));
        }
      },
      [&room, label] { room.remove_obstacles(label); });
}

std::size_t add_reflector_reboot(sim::FaultInjector& injector,
                                 core::MovrReflector& reflector,
                                 sim::TimePoint at) {
  return injector.inject_pulse("reflector_reboot(" + reflector.control_name() +
                                   ")",
                               at, [&reflector] { reflector.power_cycle(); });
}

std::size_t add_sensor_bias_drift(sim::FaultInjector& injector,
                                  core::MovrReflector& reflector,
                                  sim::TimePoint start, sim::Duration duration,
                                  double peak_bias_a, sim::Duration tick) {
  return injector.inject_sweep(
      "sensor_bias_drift(" + reflector.control_name() + ")", start, duration,
      tick,
      [&reflector, peak_bias_a](double progress) {
        reflector.front_end().inject_sensor_bias(peak_bias_a * progress);
      },
      [&reflector] { reflector.front_end().inject_sensor_bias(0.0); });
}

std::size_t add_gain_sag(sim::FaultInjector& injector,
                         core::MovrReflector& reflector, sim::TimePoint start,
                         sim::Duration duration, rf::Decibels peak_sag,
                         sim::Duration tick) {
  return injector.inject_sweep(
      "gain_sag(" + reflector.control_name() + ")", start, duration, tick,
      [&reflector, peak_sag](double progress) {
        reflector.front_end().inject_gain_sag(
            rf::Decibels{peak_sag.value() * progress});
      },
      [&reflector] { reflector.front_end().inject_gain_sag(rf::Decibels{0.0}); });
}

std::size_t add_pose_bias_drift(sim::FaultInjector& injector,
                                PredictiveMovrStrategy& strategy,
                                sim::TimePoint start, sim::Duration duration,
                                double peak_bias_m, sim::Duration tick) {
  return injector.inject_sweep(
      "pose_bias_drift", start, duration, tick,
      [&strategy, peak_bias_m](double progress) {
        strategy.set_pose_bias(
            geom::Vec2{peak_bias_m * progress, -peak_bias_m * progress});
      },
      [&strategy] { strategy.set_pose_bias(geom::Vec2{}); });
}

}  // namespace movr::vr
