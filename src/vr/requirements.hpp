// What a PC-grade VR headset demands of its link.
//
// The HTC Vive panel is 2160x1200 at 90 Hz, 24 bit RGB. The stream is raw:
// "the strict latency constraints on VR systems (about 10 ms) preclude the
// use of compression/decompression" (paper Section 1) — so the link must
// carry the full pixel rate, every frame, with no elasticity.
#pragma once

#include <sim/time.hpp>

namespace movr::vr {

struct DisplayRequirements {
  int width_px{2160};
  int height_px{1200};
  double refresh_hz{90.0};
  int bits_per_pixel{24};

  /// Raw pixel rate the link must sustain, Mbit/s (~5600 for the Vive).
  double required_mbps() const {
    return static_cast<double>(width_px) * height_px * bits_per_pixel *
           refresh_hz / 1e6;
  }

  /// Bits in one frame.
  double bits_per_frame() const {
    return static_cast<double>(width_px) * height_px * bits_per_pixel;
  }

  /// Frame interval (11.1 ms at 90 Hz).
  sim::Duration frame_interval() const {
    return sim::from_seconds(1.0 / refresh_hz);
  }

  /// Motion-to-photon budget: the display updates every ~10 ms and a frame
  /// that misses it is a visible glitch.
  sim::Duration latency_budget() const {
    return sim::Duration{std::chrono::milliseconds{10}};
  }
};

inline constexpr DisplayRequirements kHtcVive{};

}  // namespace movr::vr
