// Umbrella header for the VR session layer:
//
//   #include <vr/vr.hpp>
//
// brings in the deployment facade, session player, motion/blockage models,
// QoE reporting and display requirements (and, transitively, the whole
// core API).
#pragma once

#include <vr/deployment.hpp>
#include <vr/motion.hpp>
#include <vr/predictive.hpp>
#include <vr/qoe.hpp>
#include <vr/requirements.hpp>
#include <vr/session.hpp>
