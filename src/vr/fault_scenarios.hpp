// Typed fault builders for the canonical MoVR failure modes.
//
// sim::FaultInjector is deliberately type-agnostic (a fault is a named
// window of actions); these helpers know the actual MoVR types and wire the
// paper-relevant faults onto an injector:
//
//   - obstacle storms: seeded people wandering through channel::Room,
//     blocking LOS and reflector paths at random
//   - reflector power loss + reboot: registers wiped, calibration gone,
//     boot epoch bumped (the HealthMonitor detects the mismatch)
//   - current-sensor bias drift: skews the gain controller's only sensor
//   - amplifier gain sag: thermal/aging droop of the delivered gain
//
// Control-channel brownouts are native to the sim module
// (FaultInjector::inject_control_brownout).
#pragma once

#include <cstdint>
#include <string>

#include <channel/room.hpp>
#include <core/reflector.hpp>
#include <rf/units.hpp>
#include <sim/fault_injector.hpp>
#include <vr/predictive.hpp>

namespace movr::vr {

struct ObstacleStormConfig {
  sim::TimePoint start{};
  sim::Duration duration{std::chrono::seconds{2}};
  /// Wandering people spawned for the storm.
  int people{3};
  /// Obstacle positions update at this cadence.
  sim::Duration tick{std::chrono::milliseconds{50}};
  std::uint64_t seed{1};
  /// Obstacles carry this label prefix so the storm can clean up after
  /// itself without touching scripted blockers.
  std::string label{"storm_person"};
};

/// Seeded crowd of people walking straight lines across the room for the
/// window; all spawned obstacles are removed when the window closes.
std::size_t add_obstacle_storm(sim::FaultInjector& injector,
                               channel::Room& room,
                               const ObstacleStormConfig& config);

/// Power loss + reboot at `at`: controller registers wiped (beams, gain,
/// modulation), boot epoch incremented. Calibration must be replayed by the
/// AP before the reflector is useful again.
std::size_t add_reflector_reboot(sim::FaultInjector& injector,
                                 core::MovrReflector& reflector,
                                 sim::TimePoint at);

/// Current-sensor bias drifting linearly 0 -> `peak_bias_a` over the
/// window, then snapping back (e.g. a thermal transient).
std::size_t add_sensor_bias_drift(sim::FaultInjector& injector,
                                  core::MovrReflector& reflector,
                                  sim::TimePoint start, sim::Duration duration,
                                  double peak_bias_a,
                                  sim::Duration tick = std::chrono::milliseconds{
                                      100});

/// Amplifier gain sagging linearly 0 -> `peak_sag` dB over the window, then
/// recovering (cooling off).
std::size_t add_gain_sag(sim::FaultInjector& injector,
                         core::MovrReflector& reflector, sim::TimePoint start,
                         sim::Duration duration, rf::Decibels peak_sag,
                         sim::Duration tick = std::chrono::milliseconds{100});

/// Pose-sensor bias drifting linearly 0 -> `peak_bias_m` metres over the
/// window (diagonally, x and -y), then snapping back — the VR tracking
/// analogue of add_sensor_bias_drift. The biased poses feed the occlusion
/// forecaster garbage trajectories; the containment tests assert that the
/// proactive-handover budget and the speculative ledger still hold.
std::size_t add_pose_bias_drift(sim::FaultInjector& injector,
                                PredictiveMovrStrategy& strategy,
                                sim::TimePoint start, sim::Duration duration,
                                double peak_bias_m,
                                sim::Duration tick = std::chrono::milliseconds{
                                    100});

}  // namespace movr::vr
