// Quality-of-experience accounting for a VR session.
//
// VR traffic is non-elastic: every frame either arrives in full at the
// required rate or the player sees a glitch. QoE is therefore counted in
// frames, not in average throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <core/config_epoch.hpp>
#include <net/stats.hpp>
#include <sim/burst_channel.hpp>
#include <sim/time.hpp>

namespace movr::vr {

/// Per-injected-fault recovery accounting (filled in by Session when a
/// sim::FaultInjector is attached): how many frames glitched inside the
/// fault window, and how long from fault onset until the link was steadily
/// delivering frames again.
struct FaultRecovery {
  std::string fault;       // timeline name of the injected fault
  sim::TimePoint start{};  // fault onset
  sim::TimePoint end{};    // window end (== start for pulses)
  std::uint64_t glitched_frames{0};  // glitches inside [start, end)
  /// Time from fault onset to the first run of `recovery_good_frames`
  /// consecutive delivered frames. When the session ends first,
  /// `recovered` is false and this holds onset -> session end.
  sim::Duration time_to_recover{0};
  bool recovered{false};
};

/// Predictive link-control accounting (filled in by Session when the
/// strategy runs an occlusion forecaster; see DESIGN.md §10).
struct PredictiveLinkStats {
  /// Accepted (confidence-passing, merged) risk windows.
  int risk_windows{0};
  /// Handovers started by a forecast rather than an SNR collapse.
  int proactive_handovers{0};
  /// Accepted risk windows that closed without the direct LOS ever
  /// actually blocking — the forecaster cried wolf.
  int mispredictions{0};
  /// forecast() calls and how many the chaos knob inverted (testing only;
  /// zero in production configurations).
  long forecasts{0};
  long chaos_garbled{0};
};

/// Multi-user arena accounting (see src/arena/). The session fills the
/// spectrum-sharing half (interference, MCS caps, airtime shares) from its
/// arena hooks; the arena::Coordinator fills the control-plane half (lease
/// traffic, admission decisions) after the session finishes. Present only
/// when the session ran under a coordinator; a standalone session's report
/// never carries it — which is why the determinism contract's fingerprint
/// excludes it.
struct ArenaLinkStats {
  // -- session-filled: what spectrum sharing did to this user's link --
  std::uint64_t interfered_frames{0};  // frames with a nonzero SNR penalty
  double mean_interference_db{0.0};    // over all frames
  double max_interference_db{0.0};
  std::uint64_t mcs_capped_frames{0};  // admission cap actually bound
  std::uint64_t muted_frames{0};       // evicted: nothing flew
  double min_airtime_share{1.0};
  // -- coordinator-filled: arbitration and admission, per user --
  int reflector_denials{0};    // handover attempts with all targets leased
  int lease_grants{0};
  int lease_revocations{0};    // leases aged away to a waiting user
  int admission_degrades{0};
  int admission_evictions{0};
  int admission_readmissions{0};
  /// 0 = admitted, 1 = degraded, 2 = evicted (at session end).
  int final_admission_state{0};
  /// Per-20 ms packet-ledger audits that failed (must be zero).
  std::uint64_t ledger_violations{0};
  std::uint64_t ledger_checks{0};
};

struct QoeReport {
  std::uint64_t frames{0};
  std::uint64_t glitched_frames{0};

  double mean_snr_db{0.0};
  double min_snr_db{0.0};
  double mean_rate_mbps{0.0};

  /// Runs of consecutive glitched frames.
  std::uint64_t stall_events{0};
  sim::Duration longest_stall{0};

  /// One entry per fault in the attached injector's timeline (empty when
  /// the session ran without fault injection).
  std::vector<FaultRecovery> fault_recovery;

  /// Transport-layer accounting (latency histogram + p50/p95/p99, deadline
  /// misses, retransmit/drop counters). Present only when the session ran
  /// with Session::Config::transport enabled; under the legacy binary
  /// delivered/glitched model this stays nullopt.
  std::optional<net::TransportMetrics> transport;

  /// Burst-loss channel counters (steps spent bad, burst entries, forced
  /// entries from world events, longest burst). Present only when the
  /// session ran with Session::Config::burst_loss set.
  std::optional<sim::BurstChannel::Counters> burst;

  /// Predictive link-control counters (risk windows issued, proactive
  /// handovers, mispredictions). Present only when the session's strategy
  /// ran an occlusion forecaster (vr::PredictiveMovrStrategy).
  std::optional<PredictiveLinkStats> predictive;

  /// Control-plane incident counters (partitions entered/healed,
  /// divergences caught by the state digest, reconciliation replays,
  /// reflector safe-mode entries). Present only when the session ran with
  /// a core::ControlPlane attached (Session::Config::control_plane).
  std::optional<core::ControlPlaneIncidents> control_plane;

  /// Multi-user arena counters (interference, airtime shares, lease and
  /// admission traffic). Present only when the session ran under an
  /// arena::Coordinator (any arena hook wired in Session::Config).
  std::optional<ArenaLinkStats> arena;

  double glitch_fraction() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(glitched_frames) /
                             static_cast<double>(frames);
  }

  /// A session is "clean" when fewer than 1 frame in 10k glitches.
  bool clean() const { return glitch_fraction() < 1e-4; }
};

}  // namespace movr::vr
