// Quality-of-experience accounting for a VR session.
//
// VR traffic is non-elastic: every frame either arrives in full at the
// required rate or the player sees a glitch. QoE is therefore counted in
// frames, not in average throughput.
#pragma once

#include <cstdint>

#include <sim/time.hpp>

namespace movr::vr {

struct QoeReport {
  std::uint64_t frames{0};
  std::uint64_t glitched_frames{0};

  double mean_snr_db{0.0};
  double min_snr_db{0.0};
  double mean_rate_mbps{0.0};

  /// Runs of consecutive glitched frames.
  std::uint64_t stall_events{0};
  sim::Duration longest_stall{0};

  double glitch_fraction() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(glitched_frames) /
                             static_cast<double>(frames);
  }

  /// A session is "clean" when fewer than 1 frame in 10k glitches.
  bool clean() const { return glitch_fraction() < 1e-4; }
};

}  // namespace movr::vr
