#include <vr/deployment.hpp>

namespace movr::vr {

Deployment::Deployment(core::Scene scene, Config config)
    : scene_{std::move(scene)},
      config_{config},
      rngs_{config.seed},
      simulator_{},
      control_{simulator_, config.bluetooth, rngs_.stream("bluetooth")} {
  for (std::size_t i = 0; i < scene_.reflector_count(); ++i) {
    attach_reflector(scene_.reflector(i));
  }
}

void Deployment::attach_reflector(core::MovrReflector& reflector) {
  control_.attach(reflector.control_name(),
                  [&reflector](const sim::ControlMessage& m) {
                    reflector.handle(m);
                  });
}

Deployment::CalibrationReport Deployment::calibrate() {
  CalibrationReport report;
  const sim::TimePoint started = simulator_.now();
  const auto search_config = core::make_search_config(config_.search_step_deg);

  for (std::size_t i = 0; i < scene_.reflector_count(); ++i) {
    auto& reflector = scene_.reflector(i);
    ReflectorCalibration calibration;

    core::IncidenceSearch incidence{
        simulator_, control_, scene_, reflector, search_config,
        rngs_.stream("incidence", i)};
    incidence.start([&calibration](const core::IncidenceResult& r) {
      calibration.incidence = r;
    });
    simulator_.run();

    scene_.headset().node().face_toward(reflector.position());
    core::ReflectionSearch reflection{
        simulator_, control_, scene_, reflector, search_config,
        rngs_.stream("reflection", i)};
    reflection.start([&calibration](const core::ReflectionResult& r) {
      calibration.reflection = r;
    });
    simulator_.run();

    auto gain_rng = rngs_.stream("gain", i);
    scene_.ap().node().steer_toward(reflector.position());
    calibration.gain = core::GainController::run(
        reflector.front_end(), scene_.reflector_input(reflector), gain_rng);

    report.all_usable =
        report.all_usable && calibration.incidence.completed &&
        calibration.reflection.completed && scene_.via_snr(reflector).usable;
    report.reflectors.push_back(std::move(calibration));
  }
  report.total = simulator_.now() - started;
  return report;
}

QoeReport Deployment::play(PlayerMotion* motion, const BlockageScript* script,
                           Session::Config session_config) {
  MovrStrategy strategy{simulator_, scene_, rngs_.stream("manager")};
  Session session{simulator_, scene_, strategy, motion, script,
                  session_config};
  return session.run();
}

}  // namespace movr::vr
