// Player motion and scripted blockage events.
//
// The channel only changes when the world does: the player walks (headset
// moves), raises a hand, turns her head, or someone walks through the room.
// Sessions replay a deterministic motion model plus a blockage script, so a
// MoVR run and a baseline run see *exactly* the same world.
#pragma once

#include <random>
#include <vector>

#include <channel/room.hpp>
#include <geom/vec2.hpp>
#include <sim/time.hpp>

namespace movr::vr {

/// A deterministic headset trajectory: the session queries it once per
/// frame (monotone times) and moves the headset there before evaluating
/// the channel.
class Motion {
 public:
  virtual ~Motion() = default;
  virtual geom::Vec2 position_at(sim::TimePoint t) = 0;
};

/// Random-waypoint walking inside the play area: pick a point, walk to it
/// at walking speed, pause, repeat. Deterministic given the seed.
class PlayerMotion final : public Motion {
 public:
  struct Config {
    double speed_mps{0.6};
    double wall_margin_m{0.8};
    sim::Duration pause{std::chrono::seconds{2}};
  };

  PlayerMotion(const channel::Room& room, geom::Vec2 start,
               std::uint64_t seed)
      : PlayerMotion{room, start, seed, Config{}} {}
  PlayerMotion(const channel::Room& room, geom::Vec2 start,
               std::uint64_t seed, Config config);

  /// Position at simulation time `t` (monotone queries expected).
  geom::Vec2 position_at(sim::TimePoint t) override;

 private:
  void plan_next_leg();

  const channel::Room& room_;
  Config config_;
  std::mt19937_64 rng_;
  geom::Vec2 from_;
  geom::Vec2 to_;
  sim::TimePoint leg_start_{};
  sim::Duration leg_travel_{};
  sim::Duration leg_total_{};
};

/// Constant-speed pacing between two fixed points: A -> B -> A -> ... with
/// an optional pause at each end. Fully deterministic with no RNG — the
/// canonical trajectory for occlusion forecasting (the player repeatedly
/// crosses a standing blocker's shadow on a predictable path), and the one
/// motion model whose velocity a short pose history can actually fit.
class PacingMotion final : public Motion {
 public:
  struct Config {
    double speed_mps{0.8};
    sim::Duration pause{std::chrono::milliseconds{500}};
  };

  PacingMotion(geom::Vec2 a, geom::Vec2 b) : PacingMotion{a, b, Config{}} {}
  PacingMotion(geom::Vec2 a, geom::Vec2 b, Config config);

  geom::Vec2 position_at(sim::TimePoint t) override;

 private:
  geom::Vec2 a_;
  geom::Vec2 b_;
  Config config_;
  sim::Duration travel_{};  // one leg's walking time
  sim::Duration cycle_{};   // A->B->A including both pauses
};

/// A scripted blockage: a blocker that exists during [start, start+duration).
struct BlockageEvent {
  enum class Kind { kHand, kHead, kPersonCrossing };
  Kind kind{Kind::kHand};
  sim::TimePoint start{};
  sim::Duration duration{};
  /// kPersonCrossing: the person walks from `path_from` to `path_to` over
  /// the event duration.
  geom::Vec2 path_from{};
  geom::Vec2 path_to{};
};

/// Applies a blockage script to the room at time `t`: inserts, moves and
/// removes the scripted obstacles. Call once per frame before evaluating
/// the channel. Hand/head blockers are placed relative to the current
/// headset position, shadowing the AP direction.
class BlockageScript {
 public:
  explicit BlockageScript(std::vector<BlockageEvent> events)
      : events_{std::move(events)} {}

  const std::vector<BlockageEvent>& events() const { return events_; }

  void apply(channel::Room& room, sim::TimePoint t, geom::Vec2 headset,
             geom::Vec2 ap) const;

  /// True if any scripted blocker is active at `t`.
  bool active_at(sim::TimePoint t) const;

 private:
  std::vector<BlockageEvent> events_;
};

/// A repeating hand-raise script: raise for `up` every `period`, starting
/// at `first` — the paper's canonical blockage (Fig. 2 left).
BlockageScript periodic_hand_raises(sim::TimePoint first, sim::Duration up,
                                    sim::Duration period, sim::TimePoint end);

}  // namespace movr::vr
