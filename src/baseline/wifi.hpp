// WiFi (802.11ac) rate model — the paper's opening argument: "typical
// wireless systems such as WiFi cannot support the required data rates".
// Even a wave-2 4-stream 160 MHz link tops out far below the Vive's
// ~5.6 Gb/s raw stream, at any SNR.
#pragma once

#include <rf/units.hpp>

namespace movr::baseline {

struct WifiConfig {
  double channel_width_mhz{80.0};  // typical consumer deployment
  int spatial_streams{4};
};

/// Best 802.11ac PHY rate at `snr`, Mbps. VHT MCS 0-9 thresholds scaled to
/// the channel width; multiplied by the stream count.
double wifi_rate_mbps(rf::Decibels snr, const WifiConfig& config);

inline double wifi_rate_mbps(rf::Decibels snr) {
  return wifi_rate_mbps(snr, WifiConfig{});
}

/// The ceiling of the standard (160 MHz, 4 SS, MCS9): ~3467 Mbps — still
/// short of VR's requirement.
double wifi_max_rate_mbps();

}  // namespace movr::baseline
