#include <baseline/wifi.hpp>

#include <array>

namespace movr::baseline {

namespace {

struct VhtMcs {
  double rate_mbps_80mhz_1ss;
  double min_snr_db;
};

// 802.11ac VHT MCS 0-9 at 80 MHz, one spatial stream (long GI), with
// textbook SNR thresholds.
constexpr std::array<VhtMcs, 10> kVht{{
    {29.3, 2.0},
    {58.5, 5.0},
    {87.8, 9.0},
    {117.0, 11.0},
    {175.5, 15.0},
    {234.0, 18.0},
    {263.3, 20.0},
    {292.5, 25.0},
    {351.0, 29.0},
    {390.0, 31.0},
}};

}  // namespace

double wifi_rate_mbps(rf::Decibels snr, const WifiConfig& config) {
  double best = 0.0;
  for (const VhtMcs& mcs : kVht) {
    if (snr.value() >= mcs.min_snr_db && mcs.rate_mbps_80mhz_1ss > best) {
      best = mcs.rate_mbps_80mhz_1ss;
    }
  }
  const double width_scale = config.channel_width_mhz / 80.0;
  return best * width_scale * config.spatial_streams;
}

double wifi_max_rate_mbps() {
  return wifi_rate_mbps(rf::Decibels{60.0}, WifiConfig{160.0, 4});
}

}  // namespace movr::baseline
