// The "second antenna on the back of the headset" alternative.
//
// Section 3: "Note that one cannot solve the blockage problem by putting
// another antenna on the back of the headset, since both antennas may get
// blocked by the player's hands or body, or by the furniture and people in
// the environment." This strategy implements that proposal faithfully: two
// receive apertures ~24 cm apart (front visor and back of the head-strap),
// each with full-azimuth face selection, the better one used every frame —
// so the paper's dismissal can be measured rather than asserted.
//
// Expected outcome (and what the QoE bench shows): the back antenna rescues
// *self*-blockage (the player's own head) because it sits on the far side
// of the head, but a raised hand, furniture, or another person shadows both
// apertures — their separation is centimetres against blockers that are
// metres deep in the room.
#pragma once

#include <core/scene.hpp>
#include <vr/session.hpp>

namespace movr::baseline {

class DualAntennaStrategy final : public vr::LinkStrategy {
 public:
  struct Config {
    /// Front-to-back aperture separation across the player's head, metres.
    double antenna_separation_m{0.24};
    /// The back aperture must beat the front by this much before the
    /// receiver switches (avoids pointless flapping on a clear channel,
    /// where the AP-side aperture is trivially ~0.5 dB closer).
    rf::Decibels switch_margin{1.0};
  };

  explicit DualAntennaStrategy(core::Scene& scene)
      : DualAntennaStrategy{scene, Config{}} {}
  DualAntennaStrategy(core::Scene& scene, Config config)
      : scene_{scene}, config_{config} {}

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "dual-antenna"; }

  /// How often each aperture won (diagnostics).
  int front_selected() const { return front_selected_; }
  int back_selected() const { return back_selected_; }

 private:
  core::Scene& scene_;
  Config config_;
  int front_selected_{0};
  int back_selected_{0};
};

}  // namespace movr::baseline
