#include <baseline/strategies.hpp>

#include <cmath>

#include <geom/angle.hpp>
#include <phy/beam_sweep.hpp>
#include <phy/sls.hpp>

namespace movr::baseline {

// ---------------------------------------------------------------------
// FixedBeamStrategy
// ---------------------------------------------------------------------

FixedBeamStrategy::FixedBeamStrategy(core::Scene& scene) : scene_{scene} {
  scene_.ap().node().steer_toward(scene_.headset().node().position());
  scene_.headset().node().face_toward(scene_.ap().node().position());
  ap_steer_ = scene_.ap().node().array().steering();
  headset_orientation_ = scene_.headset().node().orientation();
  headset_steer_ = scene_.headset().node().array().steering();
}

rf::Decibels FixedBeamStrategy::on_frame() {
  // Re-assert the frozen mounting and steering (another strategy under
  // test may share the scene in back-to-back runs).
  scene_.ap().node().array().steer(ap_steer_);
  scene_.headset().node().set_orientation(headset_orientation_);
  scene_.headset().node().array().steer(headset_steer_);
  return scene_.direct_snr();
}

// ---------------------------------------------------------------------
// DirectTrackingStrategy
// ---------------------------------------------------------------------

rf::Decibels DirectTrackingStrategy::on_frame() {
  scene_.ap().node().steer_toward(scene_.headset().node().position());
  scene_.headset().node().face_toward(scene_.ap().node().position());
  return scene_.direct_snr();
}

// ---------------------------------------------------------------------
// SlsTrackingStrategy
// ---------------------------------------------------------------------

sim::Duration SlsTrackingStrategy::training_airtime() const {
  phy::SlsConfig sls;
  sls.initiator_sectors =
      phy::sectors_for_coverage(160.0, config_.sector_step_deg) * 4;
  sls.responder_sectors = sls.initiator_sectors;
  return phy::sls_duration(sls);
}

rf::Decibels SlsTrackingStrategy::on_frame() {
  if (!trained_ ||
      simulator_.now() - last_training_ >= config_.interval) {
    // One SLS: coarse sectors over all faces, then a BRP-like refinement.
    // Airtime is ~1 ms — invisible next to an 11 ms frame, so it is charged
    // as within-frame overhead rather than an outage.
    const auto paths = scene_.paths_between(
        scene_.ap().node().position(), scene_.headset().node().position());
    phy::sweep_all_directions(scene_.ap().node(), scene_.headset().node(),
                              paths, scene_.config().link,
                              /*nlos_only=*/false, config_.sector_step_deg,
                              config_.refine_step_deg);
    trained_ = true;
    last_training_ = simulator_.now();
    ++sweeps_;
  }
  return scene_.direct_snr();
}

// ---------------------------------------------------------------------
// NlosSweepStrategy
// ---------------------------------------------------------------------

NlosSweepStrategy::NlosSweepStrategy(sim::Simulator& simulator,
                                     core::Scene& scene, Config config)
    : simulator_{simulator},
      scene_{scene},
      config_{config},
      codebook_{rf::make_codebook(geom::deg_to_rad(10.0),
                                  geom::deg_to_rad(170.0),
                                  geom::deg_to_rad(config.step_deg))} {}

sim::Duration NlosSweepStrategy::sweep_cost() const {
  return config_.combo_dwell *
         static_cast<std::int64_t>(codebook_.size() * codebook_.size());
}

void NlosSweepStrategy::start_sweep() {
  sweeping_ = true;
  ++sweeps_;
  simulator_.after(sweep_cost(), [this] {
    // The sweep completes against the world as it stands *now*. The headset
    // first picks the array face toward the AP (coverage selection), then
    // both ends sweep their steerable sector.
    scene_.headset().node().face_toward(scene_.ap().node().position());
    const auto paths = scene_.paths_between(
        scene_.ap().node().position(), scene_.headset().node().position());
    phy::sweep_best_beams(scene_.ap().node(), scene_.headset().node(), paths,
                          scene_.config().link, codebook_, codebook_);
    sweeping_ = false;
    ever_swept_ = true;
    last_sweep_end_ = simulator_.now();
    post_sweep_snr_ = scene_.direct_snr().value();
  });
}

rf::Decibels NlosSweepStrategy::on_frame() {
  if (!ever_swept_ && !sweeping_) {
    // Initial association: align on whatever is best right now.
    start_sweep();
  }
  const rf::Decibels snr = scene_.direct_snr();

  if (!sweeping_ && ever_swept_ &&
      simulator_.now() - last_sweep_end_ >= config_.cooldown &&
      std::abs(snr.value() - post_sweep_snr_) >=
          config_.resweep_delta.value()) {
    start_sweep();
  }
  return snr;
}

}  // namespace movr::baseline
