#include <baseline/dual_antenna.hpp>

#include <geom/angle.hpp>

namespace movr::baseline {

rf::Decibels DualAntennaStrategy::on_frame() {
  auto& headset = scene_.headset().node();
  auto& ap = scene_.ap().node();

  // The headset's tracked position is the front aperture; the back aperture
  // sits across the head, toward the AP side when the player faces away
  // (which is when a second antenna could matter at all).
  const geom::Vec2 front_pos = headset.position();
  const geom::Vec2 toward_ap = (ap.position() - front_pos).normalized();
  const geom::Vec2 back_pos =
      front_pos + toward_ap * config_.antenna_separation_m;

  const auto snr_at = [&](geom::Vec2 aperture) {
    headset.set_position(aperture);
    headset.face_toward(ap.position());
    ap.steer_toward(aperture);
    return scene_.direct_snr();
  };

  const rf::Decibels front = snr_at(front_pos);
  const rf::Decibels back = snr_at(back_pos);

  rf::Decibels best;
  if (front + config_.switch_margin >= back) {
    ++front_selected_;
    best = snr_at(front_pos);  // leave steering on the winner
  } else {
    ++back_selected_;
    best = back;
  }
  headset.set_position(front_pos);  // tracked pose is always the visor
  return best;
}

}  // namespace movr::baseline
