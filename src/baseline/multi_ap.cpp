#include <baseline/multi_ap.hpp>

#include <algorithm>

#include <phy/link.hpp>

namespace movr::baseline {

rf::Decibels MultiApDeployment::best_snr(core::Scene& scene,
                                         geom::Vec2 headset_position) const {
  scene.headset().node().set_position(headset_position);
  rf::Decibels best{-300.0};
  for (const geom::Vec2 ap_pos : ap_positions) {
    // A candidate AP facing the headset, same hardware as the scene's AP.
    phy::RadioNode candidate{ap_pos, (headset_position - ap_pos).heading(),
                             scene.ap().node().array().config(),
                             scene.ap().node().tx_power()};
    candidate.steer_toward(headset_position);
    scene.headset().node().face_toward(ap_pos);
    const auto paths = scene.paths_between(ap_pos, headset_position);
    const rf::Decibels snr = phy::link_snr(candidate, scene.headset().node(),
                                           paths, scene.config().link);
    best = std::max(best, snr);
  }
  return best;
}

double MultiApDeployment::cabling_metres(geom::Vec2 pc) const {
  double total = 0.0;
  for (const geom::Vec2 ap : ap_positions) {
    total += geom::distance(pc, ap);
  }
  return total;
}

MultiApDeployment corner_deployment(double width_m, double depth_m,
                                    int count) {
  MultiApDeployment deployment;
  const std::vector<geom::Vec2> spots = {
      {0.3, 0.3},
      {width_m - 0.3, depth_m - 0.3},
      {width_m - 0.3, 0.3},
      {0.3, depth_m - 0.3},
      {width_m / 2.0, 0.3},
      {width_m / 2.0, depth_m - 0.3},
      {0.3, depth_m / 2.0},
      {width_m - 0.3, depth_m / 2.0},
  };
  const int n = std::clamp<int>(count, 0, static_cast<int>(spots.size()));
  deployment.ap_positions.assign(spots.begin(), spots.begin() + n);
  return deployment;
}

}  // namespace movr::baseline
