// The naive alternative the paper dismisses in Section 1: "deploy multiple
// mmWave transmitters in the room to guarantee there is always a line of
// sight" — it works, but every AP needs an HDMI run back to the PC and a
// full transceiver. This module quantifies both sides: coverage as a
// function of AP count, and the cabling/hardware cost that comes with it.
#pragma once

#include <vector>

#include <core/scene.hpp>
#include <geom/vec2.hpp>
#include <rf/units.hpp>

namespace movr::baseline {

struct MultiApDeployment {
  std::vector<geom::Vec2> ap_positions;

  /// Best direct-link SNR from any AP to a headset at `headset_position`,
  /// with ideal steering on both ends, in the scene's room/link config.
  /// (The scene's own AP is ignored; its headset and room are used.)
  rf::Decibels best_snr(core::Scene& scene, geom::Vec2 headset_position) const;

  /// Total HDMI cable length if every AP is wired to the PC at `pc`,
  /// along straight runs (lower bound on the real cabling mess).
  double cabling_metres(geom::Vec2 pc) const;
};

/// Canonical placements: APs spread along the walls of a w x d room.
MultiApDeployment corner_deployment(double width_m, double depth_m, int count);

}  // namespace movr::baseline
