// Baseline link strategies the paper argues against.
//
//  * FixedBeamStrategy — WHDI-class wireless-HDMI products: beams aligned
//    once at set-up, never adapted. "They cannot adapt their direction and
//    will be disconnected if the player moves" (Section 2b).
//  * DirectTrackingStrategy — ideal pose-tracked beams but no reflector:
//    shows that perfect steering does not survive blockage.
//  * NlosSweepStrategy — what current mmWave systems do (Section 2b): on
//    SNR degradation, run an exhaustive TX x RX beam sweep and switch to
//    the best (reflected) path. The sweep itself costs real airtime, and
//    the wall reflection it lands on is ~16 dB down — fine for elastic
//    traffic, fatal for VR.
#pragma once

#include <random>

#include <core/scene.hpp>
#include <rf/codebook.hpp>
#include <sim/simulator.hpp>
#include <vr/session.hpp>

namespace movr::baseline {

class FixedBeamStrategy final : public vr::LinkStrategy {
 public:
  /// Aligns both beams for the *current* geometry, then freezes them.
  explicit FixedBeamStrategy(core::Scene& scene);

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "fixed-beam"; }

 private:
  core::Scene& scene_;
  double ap_steer_;
  double headset_orientation_;
  double headset_steer_;
};

class DirectTrackingStrategy final : public vr::LinkStrategy {
 public:
  explicit DirectTrackingStrategy(core::Scene& scene) : scene_{scene} {}

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "direct-tracking"; }

 private:
  core::Scene& scene_;
};

/// What an off-the-shelf 802.11ad pair does: periodic sector-level sweeps
/// (SLS) at beamwidth granularity keep the beams trained without any pose
/// oracle. Tracking is nearly free (~1 ms of airtime per sweep), and under
/// clear LOS it matches pose tracking — but when the LOS blocks, the best
/// trained sector is a wall reflection, and Fig. 3 says that is not enough.
class SlsTrackingStrategy final : public vr::LinkStrategy {
 public:
  struct Config {
    /// Beam-training cadence (ad networks re-train within beacon intervals).
    sim::Duration interval{std::chrono::milliseconds{100}};
    /// Sector step, degrees (~ one beamwidth).
    double sector_step_deg{10.0};
    /// Refinement step for the BRP-like fine pass, degrees.
    double refine_step_deg{2.0};
  };

  SlsTrackingStrategy(sim::Simulator& simulator, core::Scene& scene)
      : SlsTrackingStrategy{simulator, scene, Config{}} {}
  SlsTrackingStrategy(sim::Simulator& simulator, core::Scene& scene,
                      Config config)
      : simulator_{simulator}, scene_{scene}, config_{config} {}

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "sls-tracking"; }

  int sweeps_performed() const { return sweeps_; }
  /// Airtime of one SLS at the configured sector count (for reporting).
  sim::Duration training_airtime() const;

 private:
  sim::Simulator& simulator_;
  core::Scene& scene_;
  Config config_;
  bool trained_{false};
  sim::TimePoint last_training_{};
  int sweeps_{0};
};

class NlosSweepStrategy final : public vr::LinkStrategy {
 public:
  struct Config {
    /// Sweep resolution (the paper sweeps 1 degree).
    double step_deg{1.0};
    /// Per-combination dwell: steer + one measurement.
    sim::Duration combo_dwell{std::chrono::microseconds{11}};
    /// Refractory period between sweeps.
    sim::Duration cooldown{std::chrono::milliseconds{500}};
    /// A new sweep triggers when the smoothed SNR moves this far from the
    /// level measured right after the previous sweep.
    rf::Decibels resweep_delta{5.0};
  };

  NlosSweepStrategy(sim::Simulator& simulator, core::Scene& scene)
      : NlosSweepStrategy{simulator, scene, Config{}} {}
  NlosSweepStrategy(sim::Simulator& simulator, core::Scene& scene,
                    Config config);

  rf::Decibels on_frame() override;
  std::string_view name() const override { return "nlos-sweep"; }

  int sweeps_performed() const { return sweeps_; }
  sim::Duration sweep_cost() const;

 private:
  void start_sweep();

  sim::Simulator& simulator_;
  core::Scene& scene_;
  Config config_;
  std::vector<double> codebook_;
  bool sweeping_{false};
  bool ever_swept_{false};
  sim::TimePoint last_sweep_end_{};
  double post_sweep_snr_{0.0};
  int sweeps_{0};
};

}  // namespace movr::baseline
