// The complete analog front end of a MoVR reflector: RX phased array ->
// variable-gain amplifier -> TX phased array, with TX->RX leakage closing a
// feedback loop around the amplifier, a DAC setting the gain, and a DC
// current sensor as the only diagnostic output.
//
// This class is deliberately *dumb*: it exposes exactly the controls and
// observables the real hardware exposes to the Arduino (beam angles, a gain
// code, an on/off modulation switch, a current reading) and nothing else.
// No RF quantity computed here is readable by the reflector's own control
// code — that constraint is the whole point of the paper's Section 4.
#pragma once

#include <random>

#include <hw/amplifier.hpp>
#include <hw/current_sensor.hpp>
#include <hw/dac.hpp>
#include <hw/leakage.hpp>
#include <rf/phased_array.hpp>
#include <rf/units.hpp>

namespace movr::hw {

class ReflectorFrontEnd {
 public:
  struct Config {
    rf::PhasedArray::Config array{};
    Amplifier::Config amplifier{};
    LeakageModel::Config leakage{};
    CurrentSensor::Config sensor{};
    Dac::Config gain_dac{};
    /// Power fraction of the first OOK sideband at f1 +/- f2 when the
    /// amplifier is square-wave modulated: (1/pi)^2 per sideband relative
    /// to the unmodulated carrier, ~= -9.9 dB. (Amplitude toggles 0/1, so
    /// the carrier keeps 1/4 of the power and each first sideband 1/pi^2.)
    rf::Decibels modulation_sideband_loss{-9.94};
  };

  ReflectorFrontEnd() : ReflectorFrontEnd(Config{}) {}
  explicit ReflectorFrontEnd(const Config& config);

  const Config& config() const { return config_; }

  // --- controls available to the micro-controller --------------------
  void steer_rx(double local_angle_rad) { rx_.steer(local_angle_rad); }
  void steer_tx(double local_angle_rad) { tx_.steer(local_angle_rad); }
  void set_gain_code(std::uint32_t code);
  void set_modulating(bool on) { modulating_ = on; }

  std::uint32_t gain_code() const { return gain_code_; }
  rf::Decibels amplifier_gain() const { return amplifier_.gain(); }
  bool modulating() const { return modulating_; }
  std::uint32_t max_gain_code() const { return gain_dac_.max_code(); }

  // --- fault hooks (invisible to the controller) -----------------------
  /// Power-cycle: wipes all controller-visible state (beams to boresight,
  /// gain code 0, modulation off), as a brown-out or watchdog reset would.
  /// Physical fault state (sensor bias, amplifier sag) persists — it is in
  /// the silicon, not the registers.
  void power_cycle();
  /// Drifts the current sensor's reading by `bias_a` amps.
  void inject_sensor_bias(double bias_a) { sensor_.set_bias(bias_a); }
  double sensor_bias() const { return sensor_.bias(); }
  /// Derates the amplifier's delivered gain by `sag` (thermal/aging droop).
  void inject_gain_sag(rf::Decibels sag);
  rf::Decibels gain_sag() const { return amplifier_.gain_derating(); }

  // --- physics (used by the channel, invisible to the controller) ----
  const rf::PhasedArray& rx_array() const { return rx_; }
  const rf::PhasedArray& tx_array() const { return tx_; }

  struct State {
    /// Carrier power leaving the TX array connector (before TX array gain).
    rf::DbmPower output;
    /// Power in one f1+f2 sideband when modulating (no-signal otherwise).
    rf::DbmPower sideband_output;
    rf::Decibels effective_gain;  // closed-loop, incl. regeneration
    rf::Decibels isolation;       // L at the current beam pair
    bool stable{true};
    bool saturated{false};        // compressed: output is garbage
    double supply_current_a{0.0};
  };

  /// Drives the loop with `input` at the RX array connector (i.e. already
  /// including the RX array's gain toward the incoming signal).
  State process(rf::DbmPower input) const;

  // --- the controller's only observable -------------------------------
  /// A current-sensor reading for the given drive level.
  double read_current(rf::DbmPower input, std::mt19937_64& rng,
                      int samples = 4) const;

 private:
  Config config_;
  rf::PhasedArray rx_;
  rf::PhasedArray tx_;
  Amplifier amplifier_;
  LeakageModel leakage_;
  CurrentSensor sensor_;
  Dac gain_dac_;
  std::uint32_t gain_code_{0};
  bool modulating_{false};
};

}  // namespace movr::hw
