#include <hw/leakage.hpp>

#include <algorithm>
#include <cmath>

#include <geom/angle.hpp>

namespace movr::hw {

LeakageModel::LeakageModel(const Config& config) : config_{config} {
  // Derive three stable ripple phases from the seed (splitmix-style).
  std::uint64_t z = config_.ripple_seed;
  for (double& phase : ripple_phase_) {
    z += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    phase = static_cast<double>(x % 62832ull) * 1e-4;  // [0, 2*pi)
  }
}

rf::Decibels LeakageModel::coupling(double theta_tx_rad,
                                    double theta_rx_rad) const {
  // Realised gain of each steered array toward the coupling direction.
  rf::PhasedArray tx{config_.array};
  rf::PhasedArray rx{config_.array};
  tx.steer(theta_tx_rad);
  rx.steer(theta_rx_rad);
  const double g_tx = tx.gain(config_.tx_coupling_angle).value();
  const double g_rx = rx.gain(config_.rx_coupling_angle).value();

  // Near-field standing-wave ripple: deterministic in the two angles.
  const double a = config_.ripple_amplitude_db;
  const double ripple =
      a * 0.5 * std::sin(3.1 * theta_tx_rad + 0.9 * theta_rx_rad + ripple_phase_[0]) +
      a * 0.3 * std::sin(7.3 * theta_tx_rad - 1.7 * theta_rx_rad + ripple_phase_[1]) +
      a * 0.2 * std::sin(11.7 * theta_tx_rad + 2.3 * theta_rx_rad + ripple_phase_[2]);

  const double coupling_db = config_.board_coupling.value() +
                             config_.pattern_scale * (g_tx + g_rx) + ripple;
  return rf::Decibels{coupling_db};
}

rf::Decibels LeakageModel::worst_case_isolation(int grid) const {
  const int n = std::max(grid, 2);
  // The steerable sector is the open interval (0, pi); sample strictly
  // inside it (endfire itself is not a commandable beam).
  const double lo = 0.02;
  const double hi = geom::kPi - 0.02;
  const double step = (hi - lo) / static_cast<double>(n - 1);
  double worst = 1e9;
  for (int i = 0; i < n; ++i) {
    const double tx = lo + step * static_cast<double>(i);
    for (int j = 0; j < n; ++j) {
      const double rx = lo + step * static_cast<double>(j);
      worst = std::min(worst, isolation(tx, rx).value());
    }
  }
  return rf::Decibels{worst};
}

}  // namespace movr::hw
