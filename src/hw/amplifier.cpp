#include <hw/amplifier.hpp>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace movr::hw {

Amplifier::Amplifier(const Config& config)
    : config_{config}, gain_{config.min_gain} {
  if (config_.max_gain < config_.min_gain) {
    throw std::invalid_argument{"Amplifier: max_gain below min_gain"};
  }
  if (config_.rapp_smoothness <= 0.0) {
    throw std::invalid_argument{"Amplifier: rapp_smoothness must be > 0"};
  }
}

void Amplifier::set_gain(rf::Decibels gain) {
  gain_ = std::clamp(gain, config_.min_gain, config_.max_gain);
}

Amplifier::Operating Amplifier::drive(rf::DbmPower input) const {
  const double ideal_out_mw = (input + gain()).milliwatts();
  const double sat_mw = config_.saturation_power.milliwatts();

  // Rapp soft limiter on power: out = in / (1 + (in/sat)^s)^(1/s).
  const double s = config_.rapp_smoothness;
  const double ratio = ideal_out_mw / sat_mw;
  const double actual_out_mw = ideal_out_mw / std::pow(1.0 + std::pow(ratio, s), 1.0 / s);

  Operating op;
  op.output = rf::DbmPower::from_milliwatts(actual_out_mw);
  op.compression_db = 10.0 * std::log10(ideal_out_mw / actual_out_mw);
  op.saturated = op.compression_db > 1.0;

  // Supply current: quiescent + load-proportional + compression knee.
  // The knee is a logistic ramp centred at `knee_compression_db`: well below
  // it the extra term vanishes, at/above it the full compression current
  // flows. This is the observable Section 4.2's algorithm watches.
  const double knee_x =
      (op.compression_db - config_.knee_compression_db) /
      (0.25 * config_.knee_compression_db);
  const double knee_fraction = 1.0 / (1.0 + std::exp(-knee_x));
  op.supply_current_a = config_.quiescent_current_a +
                        config_.current_per_watt * actual_out_mw * 1e-3 +
                        config_.compression_current_a * knee_fraction;
  return op;
}

}  // namespace movr::hw
