// Feedback-loop stability of the amplify-and-reflect front end.
//
// Signal-flow graph (paper Fig. 6b): amplifier gain G dB feeds the TX
// antenna; leakage attenuates by L dB back into the RX antenna and the loop
// closes. The loop is stable iff G - L < 0; as G approaches L the loop
// regenerates (closed-loop gain exceeds G) until the amplifier saturates.
#pragma once

#include <rf/units.hpp>

namespace movr::hw {

/// Stability margin L - G in dB; positive = stable.
rf::Decibels loop_margin(rf::Decibels amplifier_gain, rf::Decibels isolation);

bool is_loop_stable(rf::Decibels amplifier_gain, rf::Decibels isolation);

/// Closed-loop small-signal gain including regeneration:
/// g / (1 - g*l) in amplitude terms. Precondition: the loop is stable.
rf::Decibels closed_loop_gain(rf::Decibels amplifier_gain,
                              rf::Decibels isolation);

/// Extra input-referred boost caused by regeneration: the amplifier sees
/// its input scaled by 1 / (1 - g*l). Used to drive the saturation model.
rf::Decibels regeneration_boost(rf::Decibels amplifier_gain,
                                rf::Decibels isolation);

}  // namespace movr::hw
