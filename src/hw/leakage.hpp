// TX-to-RX leakage of the MoVR reflector.
//
// The reflector's transmit and receive arrays sit centimetres apart on one
// board: part of the transmitted signal couples straight back into the
// receive array, closing a feedback loop around the amplifier (Fig. 6).
// Crucially, the coupling depends on where both beams point — Fig. 7 shows
// swings of up to 20 dB as the TX beam steers — which is why the gain
// controller must adapt rather than assume a fixed isolation.
//
// The model is physical: each array's realised gain toward the on-board
// coupling direction (near-endfire, where the sidelobe structure sweeps past
// as the beam steers) plus a deterministic near-field ripple from enclosure
// reflections, on top of a fixed board-level coupling factor.
#pragma once

#include <cstdint>

#include <rf/phased_array.hpp>
#include <rf/units.hpp>

namespace movr::hw {

class LeakageModel {
 public:
  struct Config {
    rf::PhasedArray::Config array{};
    /// Local azimuth (radians) from the TX array toward the RX array.
    /// Near-endfire: the arrays sit side by side on the board.
    double tx_coupling_angle{0.05};
    /// Local azimuth (radians) from the RX array toward the TX array.
    double rx_coupling_angle{2.80};
    /// Board-level coupling between the two apertures (negative dB).
    /// Calibrated with the angles above so the Fig. 7 sweep spans roughly
    /// -80..-50 dB with ~20+ dB swing per RX angle.
    rf::Decibels board_coupling{-24.0};
    /// Compression of the pattern-dependent term (1 = raw array gains).
    double pattern_scale{1.0};
    /// Peak amplitude of the near-field ripple, dB.
    double ripple_amplitude_db{4.0};
    /// Selects the deterministic ripple phases (a property of the build,
    /// not a random draw at run time).
    std::uint64_t ripple_seed{0x5eed};
  };

  LeakageModel() : LeakageModel(Config{}) {}
  explicit LeakageModel(const Config& config);

  const Config& config() const { return config_; }

  /// TX->RX coupling (negative dB, e.g. -62 dB) when the TX beam steers to
  /// `theta_tx_rad` and the RX beam to `theta_rx_rad` (local angles).
  rf::Decibels coupling(double theta_tx_rad, double theta_rx_rad) const;

  /// Isolation L as a positive dB number: -coupling. The stability
  /// criterion of Section 4.2 is amplifier_gain < isolation.
  rf::Decibels isolation(double theta_tx_rad, double theta_rx_rad) const {
    return -coupling(theta_tx_rad, theta_rx_rad);
  }

  /// Minimum isolation over the full (0, pi) x (0, pi) steerable sector,
  /// scanned on a `grid` x `grid` lattice. This is a design-time property
  /// of the hardware build: any amplifier gain below it is stable at EVERY
  /// beam combination, which is what makes the reflector's autonomous
  /// safe-mode floor (core/config_epoch.hpp) provably safe with no RX
  /// chain and no knowledge of where its beams point.
  rf::Decibels worst_case_isolation(int grid = 48) const;

 private:
  Config config_;
  double ripple_phase_[3]{};
};

}  // namespace movr::hw
