#include <hw/dac.hpp>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace movr::hw {

Dac::Dac(const Config& config) : config_{config} {
  if (config_.bits < 1 || config_.bits > 24) {
    throw std::invalid_argument{"Dac: bits out of range"};
  }
  if (config_.full_scale <= 0.0) {
    throw std::invalid_argument{"Dac: full_scale must be positive"};
  }
  max_code_ = (1u << config_.bits) - 1u;
}

double Dac::output(std::uint32_t code) const {
  const std::uint32_t c = std::min(code, max_code_);
  return config_.full_scale * static_cast<double>(c) /
         static_cast<double>(max_code_);
}

std::uint32_t Dac::code_for(double value) const {
  const double clamped = std::clamp(value, 0.0, config_.full_scale);
  const double code =
      std::round(clamped / config_.full_scale * static_cast<double>(max_code_));
  return static_cast<std::uint32_t>(code);
}

}  // namespace movr::hw
