// DC current sensor (TI INA169 + ADC in the prototype).
//
// The gain controller reads the amplifier's supply current through this
// sensor: a noisy, quantised view — the knee-detection threshold has to
// clear the noise floor modelled here.
#pragma once

#include <random>

namespace movr::hw {

class CurrentSensor {
 public:
  struct Config {
    double noise_sigma_a{0.002};    // 2 mA rms sense noise
    double quantization_a{0.001};   // ADC step, 1 mA
    double full_scale_a{2.0};
  };

  CurrentSensor() : CurrentSensor(Config{}) {}
  explicit CurrentSensor(const Config& config) : config_{config} {}

  const Config& config() const { return config_; }

  /// One ADC reading of `true_current_a` amps.
  double read(double true_current_a, std::mt19937_64& rng) const;

  /// Averaged reading over `samples` conversions (the controller averages
  /// a few samples per gain step to suppress noise).
  double read_averaged(double true_current_a, int samples,
                       std::mt19937_64& rng) const;

  /// Additive measurement bias (thermal/aging drift, fault-injected): every
  /// reading is offset by this before quantisation. The gain controller
  /// cannot see it — that is the point.
  void set_bias(double bias_a) { bias_a_ = bias_a; }
  double bias() const { return bias_a_; }

 private:
  Config config_;
  double bias_a_{0.0};
};

}  // namespace movr::hw
