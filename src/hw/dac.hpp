// AD7228-class DAC: the micro-controller's only handle on analog settings.
// Phase shifters and the gain attenuator are driven by DAC codes, so every
// analog command in the system is quantised through this.
#pragma once

#include <cstdint>

namespace movr::hw {

class Dac {
 public:
  struct Config {
    int bits{8};             // AD7228 is 8-bit
    double full_scale{1.0};  // output range [0, full_scale]
  };

  Dac() : Dac(Config{}) {}
  explicit Dac(const Config& config);

  const Config& config() const { return config_; }
  std::uint32_t max_code() const { return max_code_; }

  /// Output value for a code (codes above max clamp).
  double output(std::uint32_t code) const;

  /// Nearest code producing `value` (clamped into range).
  std::uint32_t code_for(double value) const;

  /// The value actually realised when `value` is requested: quantisation
  /// round-trip through the converter.
  double quantize(double value) const { return output(code_for(value)); }

 private:
  Config config_;
  std::uint32_t max_code_;
};

}  // namespace movr::hw
