#include <hw/stability.hpp>

#include <cmath>
#include <stdexcept>

namespace movr::hw {

rf::Decibels loop_margin(rf::Decibels amplifier_gain, rf::Decibels isolation) {
  return isolation - amplifier_gain;
}

bool is_loop_stable(rf::Decibels amplifier_gain, rf::Decibels isolation) {
  return loop_margin(amplifier_gain, isolation).value() > 0.0;
}

rf::Decibels regeneration_boost(rf::Decibels amplifier_gain,
                                rf::Decibels isolation) {
  if (!is_loop_stable(amplifier_gain, isolation)) {
    throw std::logic_error{"regeneration_boost: loop is unstable"};
  }
  const double loop_amplitude =
      (amplifier_gain - isolation).amplitude();  // g * l < 1
  return rf::Decibels{-20.0 * std::log10(1.0 - loop_amplitude)};
}

rf::Decibels closed_loop_gain(rf::Decibels amplifier_gain,
                              rf::Decibels isolation) {
  return amplifier_gain + regeneration_boost(amplifier_gain, isolation);
}

}  // namespace movr::hw
