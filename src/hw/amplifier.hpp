// Variable-gain amplifier model (HMC-C020 PA + QLW-2440 LNA + HMC712
// attenuator in the prototype).
//
// Two behaviours matter to MoVR and both are modelled:
//
//  1. *Saturation*: output power soft-limits at the amplifier's saturated
//     output power (Rapp model). An amplifier driven into compression emits
//     distorted ("garbage") signal.
//  2. *Supply current*: "amplifiers draw significantly higher current as
//     they get close to saturation mode" (Section 4.2). The gain-control
//     algorithm has no receive chain, so this current knee is the ONLY
//     observable it gets.
#pragma once

#include <algorithm>

#include <rf/units.hpp>

namespace movr::hw {

class Amplifier {
 public:
  struct Config {
    rf::Decibels min_gain{0.0};
    /// QLW-2440 LNA + HMC-C020 PA minus the attenuator's insertion loss and
    /// the coax/connector losses of the prototype: ~45 dB usable
    /// through-gain. The cap sits at the low edge of the leakage range
    /// (Fig. 7: isolation ~43-80 dB), so in benign geometries the hardware
    /// bound rules — MoVR lands "a few dB" above LOS, not tens (paper §5.2)
    /// — while in low-isolation beam configurations the §4.2 gain
    /// controller must back off below the leakage.
    rf::Decibels max_gain{45.0};
    /// Saturated output power.
    rf::DbmPower saturation_power{20.0};
    /// Rapp smoothness: higher = harder limiting.
    double rapp_smoothness{2.0};
    /// Noise figure of the chain. The LNA comes first (QLW-2440, NF ~2.5
    /// dB) and sets the cascade per Friis' formula; the attenuator and PA
    /// behind its ~25 dB of gain add a fraction of a dB. The relay
    /// amplifies its input noise by this over kTB — at high gain that
    /// re-radiated noise measurably raises the floor at the headset.
    rf::Decibels noise_figure{3.0};
    /// Quiescent supply current, amps.
    double quiescent_current_a{0.350};
    /// Current proportional to RF output power (class-AB behaviour), A/W.
    double current_per_watt{1.5};
    /// Extra current drawn when compressed, amps (the detectable knee).
    double compression_current_a{0.120};
    /// Compression depth (dB) at which half the knee current flows.
    double knee_compression_db{0.5};
  };

  Amplifier() : Amplifier(Config{}) {}
  explicit Amplifier(const Config& config);

  const Config& config() const { return config_; }

  /// Commands a gain; clamped into [min_gain, max_gain].
  void set_gain(rf::Decibels gain);
  /// Delivered gain: the commanded gain minus any derating (fault-injected
  /// aging/thermal sag), floored at min_gain.
  rf::Decibels gain() const {
    const double g = gain_.value() - derating_.value();
    return rf::Decibels{std::max(g, config_.min_gain.value())};
  }

  /// Physical gain sag (aging, thermal droop): subtracted from every
  /// commanded gain until cleared. Invisible to the controller, which still
  /// believes its DAC code bought the full gain — exactly the failure mode
  /// fault-injection experiments script.
  void set_gain_derating(rf::Decibels derating) { derating_ = derating; }
  rf::Decibels gain_derating() const { return derating_; }

  /// Result of driving the amplifier with a given input power.
  struct Operating {
    rf::DbmPower output;          // actual (compressed) output power
    double compression_db{0.0};   // ideal-minus-actual output, dB
    double supply_current_a{0.0};
    bool saturated{false};        // compression beyond 1 dB: garbage signal
  };

  /// Static transfer function: no state is kept between calls.
  Operating drive(rf::DbmPower input) const;

 private:
  Config config_;
  rf::Decibels gain_;
  rf::Decibels derating_{0.0};
};

}  // namespace movr::hw
