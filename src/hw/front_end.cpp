#include <hw/front_end.hpp>

#include <hw/stability.hpp>

namespace movr::hw {

ReflectorFrontEnd::ReflectorFrontEnd(const Config& config)
    : config_{config},
      rx_{config.array},
      tx_{config.array},
      amplifier_{config.amplifier},
      leakage_{config.leakage},
      sensor_{config.sensor},
      gain_dac_{config.gain_dac} {
  set_gain_code(0);
}

void ReflectorFrontEnd::power_cycle() {
  rx_ = rf::PhasedArray{config_.array};
  tx_ = rf::PhasedArray{config_.array};
  modulating_ = false;
  set_gain_code(0);
}

void ReflectorFrontEnd::inject_gain_sag(rf::Decibels sag) {
  amplifier_.set_gain_derating(sag);
  // Re-command the current code so the delivered gain reflects the sag.
  set_gain_code(gain_code_);
}

void ReflectorFrontEnd::set_gain_code(std::uint32_t code) {
  gain_code_ = std::min(code, gain_dac_.max_code());
  // The DAC output maps linearly (in dB) onto the attenuator's range:
  // code 0 = minimum gain, full scale = maximum gain.
  const double span = config_.amplifier.max_gain.value() -
                      config_.amplifier.min_gain.value();
  const double fraction =
      gain_dac_.output(gain_code_) / gain_dac_.config().full_scale;
  amplifier_.set_gain(
      rf::Decibels{config_.amplifier.min_gain.value() + span * fraction});
}

ReflectorFrontEnd::State ReflectorFrontEnd::process(rf::DbmPower input) const {
  State state;
  state.isolation = leakage_.isolation(tx_.steering(), rx_.steering());

  const rf::Decibels gain = amplifier_.gain();
  if (!is_loop_stable(gain, state.isolation)) {
    // Oscillation: the amplifier rails at its saturated output regardless
    // of input, emitting garbage and drawing saturation-level current.
    state.stable = false;
    state.saturated = true;
    const auto railed = amplifier_.drive(
        config_.amplifier.saturation_power - gain);  // drive fully into sat
    state.output = railed.output;
    state.sideband_output = rf::DbmPower{};  // garbage, not a clean sideband
    state.effective_gain = state.output - input;
    state.supply_current_a = railed.supply_current_a;
    return state;
  }

  // Stable loop: regeneration boosts the signal the amplifier sees.
  const rf::Decibels boost = regeneration_boost(gain, state.isolation);
  const auto op = amplifier_.drive(input + boost);
  state.output = op.output;
  state.effective_gain = state.output - input;
  state.saturated = op.saturated;
  state.supply_current_a = op.supply_current_a;
  state.sideband_output =
      modulating_ ? state.output + config_.modulation_sideband_loss
                  : rf::DbmPower{};
  if (modulating_) {
    // 50% duty cycle halves the *signal-dependent* part of the current.
    const double quiescent = config_.amplifier.quiescent_current_a;
    state.supply_current_a =
        quiescent + 0.5 * (state.supply_current_a - quiescent);
  }
  return state;
}

double ReflectorFrontEnd::read_current(rf::DbmPower input,
                                       std::mt19937_64& rng,
                                       int samples) const {
  return sensor_.read_averaged(process(input).supply_current_a, samples, rng);
}

}  // namespace movr::hw
