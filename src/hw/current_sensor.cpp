#include <hw/current_sensor.hpp>

#include <algorithm>
#include <cmath>

namespace movr::hw {

double CurrentSensor::read(double true_current_a, std::mt19937_64& rng) const {
  std::normal_distribution<double> noise{0.0, config_.noise_sigma_a};
  double reading = true_current_a + bias_a_ + noise(rng);
  reading = std::clamp(reading, 0.0, config_.full_scale_a);
  if (config_.quantization_a > 0.0) {
    reading = std::round(reading / config_.quantization_a) * config_.quantization_a;
  }
  return reading;
}

double CurrentSensor::read_averaged(double true_current_a, int samples,
                                    std::mt19937_64& rng) const {
  const int n = std::max(samples, 1);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += read(true_current_a, rng);
  }
  return sum / n;
}

}  // namespace movr::hw
