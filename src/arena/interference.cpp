#include <arena/interference.hpp>

#include <cmath>
#include <vector>

#include <phy/link.hpp>
#include <phy/radio.hpp>

namespace movr::arena {

namespace {

/// Frequency-averaged power of an emission from `position` into the
/// victim's headset, over the victim room's ray paths, with an arbitrary
/// transmit-side response (mirrors core::Scene's file-local hop_power).
template <typename FTx>
rf::DbmPower emission_at_headset(const core::Scene& victim,
                                 geom::Vec2 position, rf::DbmPower tx_power,
                                 FTx&& tx_response, rf::Decibels extra_loss) {
  const auto paths =
      victim.paths_view(position, victim.headset().node().position());
  std::vector<phy::PathComponent> components;
  components.reserve(paths->size());
  for (const channel::Path& path : *paths) {
    const rf::DbmPower path_power = tx_power - path.loss;
    const double amplitude = std::sqrt(path_power.milliwatts());
    components.push_back(
        {amplitude * tx_response(path.departure_azimuth) *
             victim.headset().node().response_toward(path.arrival_azimuth),
         path.length_m});
  }
  return phy::wideband_power(components, victim.config().link, extra_loss);
}

}  // namespace

rf::DbmPower interference_at_headset(const core::Scene& victim,
                                     std::span<const Interferer> aggressors,
                                     const InterferenceConfig& config) {
  double total_mw = 0.0;
  const geom::Vec2 victim_ap = victim.ap().node().position();
  for (const Interferer& aggressor : aggressors) {
    if (aggressor.scene == nullptr || aggressor.scene == &victim) {
      continue;
    }
    const core::Scene& other = *aggressor.scene;
    const geom::Vec2 other_ap = other.ap().node().position();
    if ((other_ap - victim_ap).norm() >= config.same_ap_epsilon_m) {
      // A foreign AP transmits concurrently; its beam (steered for its
      // own user) leaks into the victim's aperture over the victim
      // room's paths.
      const auto paths =
          victim.paths_view(other_ap, victim.headset().node().position());
      total_mw += phy::received_power(other.ap().node(),
                                      victim.headset().node(), *paths,
                                      victim.config().link)
                      .milliwatts();
    }
    if (aggressor.via_reflector &&
        aggressor.reflector < other.reflector_count()) {
      // The leased reflector re-radiates its amplified output — stable or
      // not, that energy lands in the room; a compressed front end's
      // garbage interferes just as hard.
      const core::MovrReflector& reflector =
          other.reflector(aggressor.reflector);
      const auto state =
          reflector.front_end().process(other.reflector_input(reflector));
      const auto& tx_array = reflector.front_end().tx_array();
      total_mw +=
          emission_at_headset(
              victim, reflector.position(), state.output,
              [&](double az) {
                return phy::array_response(tx_array, reflector.to_local(az));
              },
              victim.config().rx_side_loss)
              .milliwatts();
    }
  }
  return rf::DbmPower::from_milliwatts(total_mw > 0.0 ? total_mw : 1e-30);
}

double sinr_penalty_db(const core::Scene& victim,
                       std::span<const Interferer> aggressors,
                       const InterferenceConfig& config) {
  const double interference_mw =
      interference_at_headset(victim, aggressors, config).milliwatts();
  const double noise_mw =
      phy::link_noise_floor(victim.config().link).milliwatts();
  if (interference_mw <= 1e-29 || noise_mw <= 0.0) {
    return 0.0;
  }
  return 10.0 * std::log10(1.0 + interference_mw / noise_mw);
}

}  // namespace movr::arena
