// The multi-user arena coordinator.
//
// N per-user vr::Sessions — each a full clone of the single-user stack:
// scene, LinkManager, transport — interleave on ONE simulator, while the
// coordinator runs the shared-room physics and policy around them:
//
//   * spectrum: per-victim mutual-interference penalties (interference.hpp)
//     and per-AP airtime shares, fed through the Session's arena hooks into
//     the existing ChannelState path;
//   * reflectors: the lease table (lease.hpp) arbitrates exclusive use;
//     the LinkManager's acquire/release hooks and revoke_reflector() are
//     the data-plane ends of that protocol;
//   * load: the admission controller (admission.hpp) degrades and evicts
//     users with hysteresis when an AP's airtime oversubscribes.
//
// Determinism contract (DESIGN.md §12.4): every per-user random stream is
// derived from (seed, purpose, user) via sim::RngRegistry; sessions tick
// in user order at equal timestamps (insertion order breaks event-queue
// ties); coordinator control ticks never consume session RNG. A 1-user
// arena is bit-identical to the standalone Session that
// standalone_run() builds from the same seed — the hooks degenerate to
// subtracting 0.0 dB, capping at INT_MAX and dividing airtime by 1.0, and
// qoe_fingerprint() is the equality the bench gate checks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include <arena/admission.hpp>
#include <arena/interference.hpp>
#include <arena/lease.hpp>
#include <core/link_manager.hpp>
#include <log/recorder.hpp>
#include <sim/simulator.hpp>
#include <vr/motion.hpp>
#include <vr/session.hpp>

namespace movr::arena {

/// Order-insensitive-field digest of a QoE report for the bit-identity
/// gate: every deterministic outcome field (frame ledger, SNR/rate sums,
/// transport counters and latency percentiles, burst counters), doubles by
/// bit pattern. QoeReport::arena is deliberately excluded — its *presence*
/// is the only difference between a 1-user arena run and its standalone
/// reference.
std::uint64_t qoe_fingerprint(const vr::QoeReport& report);

class Coordinator {
 public:
  /// Per-user world builders, shared verbatim by run() and
  /// standalone_run() so both construct the same bits. The scene passed in
  /// is the user's own clone at its final address.
  using MotionFactory = std::function<std::unique_ptr<vr::Motion>(
      std::size_t user, const core::Scene& scene)>;
  using ScriptFactory =
      std::function<vr::BlockageScript(std::size_t user)>;

  struct Config {
    std::size_t users{2};
    /// AP grid: user u attaches to ap_positions[u % K] (their clone's AP
    /// moves there). Empty = everyone shares the prototype AP's position
    /// (one physical AP: pure airtime sharing, no AP-to-AP interference).
    std::vector<geom::Vec2> ap_positions;
    /// Boresight azimuths paired with ap_positions (an AP moved to another
    /// corner must re-aim into the room). Empty keeps the prototype's
    /// mounting orientation.
    std::vector<double> ap_orientations;
    ReflectorArbiter::Config arbiter{};
    AdmissionController::Config admission{};
    InterferenceConfig interference{};
    /// Session template: duration, display, transport, burst... applied to
    /// every user; per-user seeds and the arena hooks are filled in by the
    /// coordinator.
    vr::Session::Config session{};
    /// LinkManager template; the lease hooks are filled in per user.
    core::LinkManager::Config link{};
    /// Lease renewal + share recomputation cadence.
    sim::Duration control_interval{std::chrono::milliseconds{20}};
    /// Admission window (rounded up to a control-tick multiple).
    sim::Duration admission_window{std::chrono::milliseconds{250}};
    /// Per-user transport ledger audit cadence; zero disables.
    sim::Duration ledger_check_interval{std::chrono::milliseconds{20}};
    std::uint64_t seed{1};
    /// Coordinator-stream event-log sink: control-tick interleave markers,
    /// lease revocations and admission transitions land here.
    log::Recorder* recorder{nullptr};
    /// Per-user event-log sinks: when set, user u's session + link manager
    /// record into user_recorder(u) (nullptr = that user unlogged).
    std::function<log::Recorder*(std::size_t user)> user_recorder;
  };

  struct UserResult {
    vr::QoeReport report;
    core::LinkManager::Stats link_stats;
  };

  Coordinator(sim::Simulator& simulator, const core::Scene& prototype,
              Config config, MotionFactory motion = {},
              ScriptFactory script = {});
  ~Coordinator();

  /// Starts every session, drives the simulator to the session end, and
  /// returns one result per user (session report + link-manager stats,
  /// with QoeReport::arena fully populated).
  std::vector<UserResult> run();

  /// Builds user `user`'s world exactly as run() would — same clone, same
  /// calibration, same derived seeds — and runs it as a standalone
  /// Session on a fresh simulator with NO arena hooks. The determinism
  /// contract's reference run: qoe_fingerprint of this must equal the
  /// fingerprint of a 1-user run()'s report.
  static vr::QoeReport standalone_run(const core::Scene& prototype,
                                      const Config& config,
                                      const MotionFactory& motion,
                                      const ScriptFactory& script,
                                      std::size_t user);

  const ReflectorArbiter& arbiter() const { return arbiter_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  /// Everything derived per user before the hooks go in; built identically
  /// by run() and standalone_run().
  struct UserWorld {
    core::Scene scene;
    std::mt19937_64 manager_rng;
    core::LinkManager::Config link_config;
    vr::Session::Config session_config;
    std::size_t ap_index{0};
    double offered_mbps{0.0};
  };

  struct User {
    core::Scene scene;
    std::unique_ptr<vr::Motion> motion;
    std::optional<vr::BlockageScript> script;
    vr::MovrStrategy strategy;
    vr::Session session;
    std::size_t ap_index{0};
    double offered_mbps{0.0};
    // Admission-window deltas of the transport's live counters.
    std::uint64_t last_misses{0};
    std::uint64_t last_frames{0};
    // Per-20 ms ledger audit results (folded into ArenaLinkStats).
    std::uint64_t ledger_checks{0};
    std::uint64_t ledger_violations{0};

    User(sim::Simulator& simulator, UserWorld world,
         const MotionFactory& motion_factory,
         const ScriptFactory& script_factory, std::size_t index);
  };

  static UserWorld build_user_world(const core::Scene& prototype,
                                    const Config& config, std::size_t user);

  bool try_acquire(std::size_t user, std::size_t reflector);
  double penalty_for(std::size_t user);
  void control_tick();
  void admission_tick(sim::TimePoint now);
  void recompute_shares();
  void ledger_tick();

  sim::Simulator& simulator_;
  Config config_;
  MotionFactory motion_factory_;
  ScriptFactory script_factory_;
  ReflectorArbiter arbiter_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<User>> users_;
  std::vector<double> share_;  // per user, refreshed each control tick
  sim::TimePoint end_{};
  int control_ticks_per_window_{1};
  int ticks_since_admission_{0};
  // Scratch, reused per call (the control plane allocates only on warmup).
  std::vector<Interferer> interferer_scratch_;
  std::vector<AdmissionController::Sample> sample_scratch_;
  std::vector<AdmissionController::State> admission_state_scratch_;
  std::vector<double> ap_weight_scratch_;
};

}  // namespace movr::arena
