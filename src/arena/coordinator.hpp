// The multi-user arena coordinator.
//
// N per-user vr::Sessions — each a full clone of the single-user stack:
// scene, LinkManager, transport — interleave on ONE simulator, while the
// coordinator runs the shared-room physics and policy around them:
//
//   * spectrum: per-victim mutual-interference penalties (interference.hpp)
//     and per-AP airtime shares, fed through the Session's arena hooks into
//     the existing ChannelState path;
//   * reflectors: the lease table (lease.hpp) arbitrates exclusive use;
//     the LinkManager's acquire/release hooks and revoke_reflector() are
//     the data-plane ends of that protocol;
//   * load: the admission controller (admission.hpp) degrades and evicts
//     users with hysteresis when an AP's airtime oversubscribes.
//
// Determinism contract (DESIGN.md §12.4): every per-user random stream is
// derived from (seed, purpose, user) via sim::RngRegistry; sessions tick
// in user order at equal timestamps (insertion order breaks event-queue
// ties); coordinator control ticks never consume session RNG. A 1-user
// arena is bit-identical to the standalone Session that
// standalone_run() builds from the same seed — the hooks degenerate to
// subtracting 0.0 dB, capping at INT_MAX and dividing airtime by 1.0, and
// qoe_fingerprint() is the equality the bench gate checks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include <arena/admission.hpp>
#include <arena/interference.hpp>
#include <arena/lease.hpp>
#include <core/health.hpp>
#include <core/link_manager.hpp>
#include <log/recorder.hpp>
#include <sim/fault_injector.hpp>
#include <sim/simulator.hpp>
#include <vr/motion.hpp>
#include <vr/session.hpp>

namespace movr::arena {

/// One scripted shared-resource fault. Each user simulates its own clone
/// of the room, but the reflector/AP being faulted is ONE physical device:
/// the coordinator mirrors the perturbation onto every clone inside a
/// single FaultInjector window and drives lease failover, device
/// quarantine and fault-aware admission from the same window.
struct ArenaFault {
  enum class Kind : std::uint8_t {
    /// Instantaneous power-cycle: registers wiped on every clone; each
    /// AP's own epoch-mismatch detection recalibrates on next commit.
    kReflectorReboot,
    /// Amplifier gain sag ramping 0 -> magnitude_db over the window.
    kReflectorGainSag,
    /// AP front-end brownout: an SNR penalty on every attached user for
    /// the window (the AP radio itself keeps running).
    kApBrownout,
  };
  Kind kind{Kind::kReflectorReboot};
  /// Reflector index, or AP index for kApBrownout.
  std::size_t resource{0};
  sim::TimePoint start{};
  /// Window length; ignored by kReflectorReboot (a pulse).
  sim::Duration duration{std::chrono::seconds{1}};
  /// Peak sag / brownout penalty; ignored by kReflectorReboot.
  double magnitude_db{6.0};
};

/// Order-insensitive-field digest of a QoE report for the bit-identity
/// gate: every deterministic outcome field (frame ledger, SNR/rate sums,
/// transport counters and latency percentiles, burst counters), doubles by
/// bit pattern. QoeReport::arena is deliberately excluded — its *presence*
/// is the only difference between a 1-user arena run and its standalone
/// reference.
std::uint64_t qoe_fingerprint(const vr::QoeReport& report);

class Coordinator {
 public:
  /// Per-user world builders, shared verbatim by run() and
  /// standalone_run() so both construct the same bits. The scene passed in
  /// is the user's own clone at its final address.
  using MotionFactory = std::function<std::unique_ptr<vr::Motion>(
      std::size_t user, const core::Scene& scene)>;
  using ScriptFactory =
      std::function<vr::BlockageScript(std::size_t user)>;

  struct Config {
    std::size_t users{2};
    /// AP grid: user u attaches to ap_positions[u % K] (their clone's AP
    /// moves there). Empty = everyone shares the prototype AP's position
    /// (one physical AP: pure airtime sharing, no AP-to-AP interference).
    std::vector<geom::Vec2> ap_positions;
    /// Boresight azimuths paired with ap_positions (an AP moved to another
    /// corner must re-aim into the room). Empty keeps the prototype's
    /// mounting orientation.
    std::vector<double> ap_orientations;
    ReflectorArbiter::Config arbiter{};
    AdmissionController::Config admission{};
    InterferenceConfig interference{};
    /// Session template: duration, display, transport, burst... applied to
    /// every user; per-user seeds and the arena hooks are filled in by the
    /// coordinator.
    vr::Session::Config session{};
    /// LinkManager template; the lease hooks are filled in per user.
    core::LinkManager::Config link{};
    /// Lease renewal + share recomputation cadence.
    sim::Duration control_interval{std::chrono::milliseconds{20}};
    /// Admission window (rounded up to a control-tick multiple).
    sim::Duration admission_window{std::chrono::milliseconds{250}};
    /// Per-user transport ledger audit cadence; zero disables.
    sim::Duration ledger_check_interval{std::chrono::milliseconds{20}};
    std::uint64_t seed{1};
    /// Shared-resource fault script (empty = fault-free: none of the
    /// chaos machinery below runs and the arena is bit-identical to the
    /// pre-fault coordinator).
    std::vector<ArenaFault> faults;
    /// Lease failover: when a reflector faults, quarantine it arbiter-side,
    /// strip + revoke the holder, fast-track the displaced holder, and keep
    /// the device un-leased until a coordinator re-probe succeeds.
    /// Disabling this is the chaos bench's tripwire — holders then ride
    /// quarantined devices and the offline verifier's lease-liveness
    /// invariant (F) must catch it from the log alone.
    bool lease_failover{true};
    /// Lease-liveness bound: no lease may survive on a quarantined device
    /// longer than this. Written into the coordinator log's params record
    /// (revoke_grace_us) so log_verify can re-check it offline.
    sim::Duration revoke_grace{std::chrono::milliseconds{60}};
    /// Aging head start credited to a holder displaced by failover, so
    /// losing a reflector to a fault does not also mean the back of the
    /// wait queue.
    sim::Duration fast_track_head_start{std::chrono::milliseconds{150}};
    /// A fault-displaced or browned-out user stays "fault-degraded" for
    /// admission this long past its fault window: spared as eviction
    /// victim, and readmission probation composes with the window.
    sim::Duration fault_degraded_grace{std::chrono::milliseconds{500}};
    /// Orphan watchdog: an arbiter-side holder whose manager holds no
    /// matching lease for longer than this is reaped.
    sim::Duration orphan_grace{std::chrono::milliseconds{60}};
    /// Device-level health supervision of the shared reflectors
    /// (coordinator-side quarantine/backoff/re-probe; distinct from each
    /// user's own link-health monitor).
    core::HealthMonitor::Config device_health{};
    /// Coordinator-stream event-log sink: control-tick interleave markers,
    /// lease revocations and admission transitions land here.
    log::Recorder* recorder{nullptr};
    /// Per-user event-log sinks: when set, user u's session + link manager
    /// record into user_recorder(u) (nullptr = that user unlogged).
    std::function<log::Recorder*(std::size_t user)> user_recorder;
  };

  struct UserResult {
    vr::QoeReport report;
    core::LinkManager::Stats link_stats;
  };

  /// Arena-chaos observability (surfaced in bench/arena_chaos and README).
  struct ChaosStats {
    std::uint64_t faults_applied{0};
    /// Holders stripped + revoked because their device was quarantined.
    std::uint64_t failover_revocations{0};
    /// Arbiter-side holders with no manager-side lease, reaped by the
    /// watchdog (0 in a healthy run: release paths keep the sides in sync).
    std::uint64_t orphan_leases_reaped{0};
    std::uint64_t device_quarantines{0};
    std::uint64_t device_restores{0};
    /// Admission samples that carried the fault-degraded flag.
    std::uint64_t fault_degraded_samples{0};
  };

  Coordinator(sim::Simulator& simulator, const core::Scene& prototype,
              Config config, MotionFactory motion = {},
              ScriptFactory script = {});
  ~Coordinator();

  /// Starts every session, drives the simulator to the session end, and
  /// returns one result per user (session report + link-manager stats,
  /// with QoeReport::arena fully populated).
  std::vector<UserResult> run();

  /// Builds user `user`'s world exactly as run() would — same clone, same
  /// calibration, same derived seeds — and runs it as a standalone
  /// Session on a fresh simulator with NO arena hooks. The determinism
  /// contract's reference run: qoe_fingerprint of this must equal the
  /// fingerprint of a 1-user run()'s report.
  static vr::QoeReport standalone_run(const core::Scene& prototype,
                                      const Config& config,
                                      const MotionFactory& motion,
                                      const ScriptFactory& script,
                                      std::size_t user);

  const ReflectorArbiter& arbiter() const { return arbiter_; }
  const AdmissionController& admission() const { return admission_; }
  const ChaosStats& chaos() const { return chaos_; }
  /// Device-level (shared-reflector) health; empty-tracked when no faults
  /// are scripted.
  const core::HealthMonitor& device_health() const { return device_health_; }
  /// Live per-user probes for the chaos bench's 20 ms isolation checker.
  std::size_t user_count() const { return users_.size(); }
  std::size_t user_ap(std::size_t user) const {
    return users_.at(user)->ap_index;
  }
  const net::Transport* user_transport(std::size_t user) const {
    return users_.at(user)->session.transport();
  }
  /// The user's own per-clone link manager (reflector health, calibration).
  const core::LinkManager& user_manager(std::size_t user) const {
    return users_.at(user)->strategy.manager();
  }
  /// True while `user` is inside a fault's blast radius (displaced holder
  /// or browned-out AP), including the configured post-window grace.
  bool fault_degraded(std::size_t user, sim::TimePoint now) const {
    return now < fault_until_.at(user) ||
           (!ap_brownout_db_.empty() &&
            ap_brownout_db_[users_.at(user)->ap_index] > 0.0);
  }

 private:
  /// Everything derived per user before the hooks go in; built identically
  /// by run() and standalone_run().
  struct UserWorld {
    core::Scene scene;
    std::mt19937_64 manager_rng;
    core::LinkManager::Config link_config;
    vr::Session::Config session_config;
    std::size_t ap_index{0};
    double offered_mbps{0.0};
  };

  struct User {
    core::Scene scene;
    std::unique_ptr<vr::Motion> motion;
    std::optional<vr::BlockageScript> script;
    vr::MovrStrategy strategy;
    vr::Session session;
    std::size_t ap_index{0};
    double offered_mbps{0.0};
    // Admission-window deltas of the transport's live counters.
    std::uint64_t last_misses{0};
    std::uint64_t last_frames{0};
    // Per-20 ms ledger audit results (folded into ArenaLinkStats).
    std::uint64_t ledger_checks{0};
    std::uint64_t ledger_violations{0};

    User(sim::Simulator& simulator, UserWorld world,
         const MotionFactory& motion_factory,
         const ScriptFactory& script_factory, std::size_t index);
  };

  static UserWorld build_user_world(const core::Scene& prototype,
                                    const Config& config, std::size_t user);

  bool try_acquire(std::size_t user, std::size_t reflector);
  double penalty_for(std::size_t user);
  void control_tick();
  void admission_tick(sim::TimePoint now);
  void recompute_shares();
  void ledger_tick();
  void schedule_faults();
  /// A reflector fault window opened (or a reboot pulsed): device
  /// quarantine + (when enabled) lease failover for the holder.
  void on_reflector_fault(std::size_t r, sim::TimePoint window_end,
                          bool windowed);
  void on_reflector_fault_close(std::size_t r);
  void mark_fault_degraded(std::size_t user, sim::TimePoint until);
  /// Re-probe quarantined devices whose backoff expired; restore and
  /// un-quarantine the arbiter side on success.
  void device_probe_tick(sim::TimePoint now);
  /// Reap arbiter-side holders whose manager no longer holds the lease.
  void orphan_watchdog(sim::TimePoint now);
  void snapshot_leases(sim::TimePoint now);
  void record_arena_fault(log::EventKind kind, const ArenaFault& fault);

  sim::Simulator& simulator_;
  Config config_;
  MotionFactory motion_factory_;
  ScriptFactory script_factory_;
  ReflectorArbiter arbiter_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<User>> users_;
  std::vector<double> share_;  // per user, refreshed each control tick
  sim::TimePoint end_{};
  int control_ticks_per_window_{1};
  int ticks_since_admission_{0};
  // --- chaos machinery (inert when config_.faults is empty) -------------
  std::unique_ptr<sim::FaultInjector> injector_;
  core::HealthMonitor device_health_;
  ChaosStats chaos_;
  std::vector<double> ap_brownout_db_;        // per AP, live penalty
  std::vector<int> active_reflector_faults_;  // per reflector, open windows
  std::vector<sim::TimePoint> fault_until_;   // per user, degraded until
  std::vector<sim::TimePoint> orphan_since_;  // per reflector
  std::vector<std::uint8_t> orphan_armed_;    // per reflector
  // Scratch, reused per call (the control plane allocates only on warmup).
  std::vector<Interferer> interferer_scratch_;
  std::vector<AdmissionController::Sample> sample_scratch_;
  std::vector<AdmissionController::State> admission_state_scratch_;
  std::vector<double> ap_weight_scratch_;
};

}  // namespace movr::arena
