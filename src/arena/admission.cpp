#include <arena/admission.hpp>

#include <limits>

namespace movr::arena {

AdmissionController::AdmissionController(std::size_t users, std::size_t aps,
                                         Config config)
    : config_{config},
      state_(users, State::kAdmitted),
      counters_(users),
      evicted_at_(users),
      degraded_at_(users),
      overload_windows_(aps, 0),
      headroom_windows_(aps, 0),
      utilization_(aps, 0.0) {}

double AdmissionController::airtime_ratio(const Sample& sample) {
  if (sample.mcs_rate_mbps <= 0.0) {
    return 0.0;  // link down: consuming no airtime (and no service either)
  }
  return sample.offered_mbps / sample.mcs_rate_mbps;
}

double AdmissionController::weight(std::size_t user) const {
  switch (state_.at(user)) {
    case State::kAdmitted:
      return 1.0;
    case State::kDegraded:
      return 0.5;
    case State::kEvicted:
      return 0.0;
  }
  return 0.0;
}

int AdmissionController::mcs_cap(std::size_t user) const {
  switch (state_.at(user)) {
    case State::kAdmitted:
      return std::numeric_limits<int>::max();
    case State::kDegraded:
      return config_.degraded_mcs_cap;
    case State::kEvicted:
      return -1;
  }
  return -1;
}

void AdmissionController::on_window(std::span<const Sample> samples,
                                    sim::TimePoint now) {
  // 1. Per-AP airtime utilization over the transmitting users.
  for (double& u : utilization_) {
    u = 0.0;
  }
  std::vector<int> transmitting_on(utilization_.size(), 0);
  for (std::size_t u = 0; u < samples.size(); ++u) {
    if (!transmitting(u)) {
      continue;
    }
    utilization_.at(samples[u].ap) += airtime_ratio(samples[u]);
    ++transmitting_on[samples[u].ap];
  }

  // 2. Dwell accounting + at most one transition per AP per window.
  for (std::size_t ap = 0; ap < utilization_.size(); ++ap) {
    if (utilization_[ap] > config_.capacity_fraction) {
      ++overload_windows_[ap];
      headroom_windows_[ap] = 0;
    } else if (utilization_[ap] < config_.headroom_fraction) {
      ++headroom_windows_[ap];
      overload_windows_[ap] = 0;
    } else {
      // Inside the hysteresis band: no evidence accumulates either way.
      overload_windows_[ap] = 0;
      headroom_windows_[ap] = 0;
    }

    if (overload_windows_[ap] >= config_.dwell_windows &&
        transmitting_on[ap] >= 2) {
      // Shed from the user with the worst airtime economics, whatever its
      // state: an admitted victim is degraded first (half weight + MCS
      // cap); a victim that is already degraded and still the worst is
      // evicted — but only after evict_grace, so a transiently blocked
      // user whose PHY rate is about to recover is not double-demoted
      // straight out of the room. Never degrade a healthy user while the
      // actual air-burner sits one rung down.
      const auto worst_ratio_user = [&](auto&& eligible) {
        std::size_t victim = samples.size();
        double worst = -1.0;
        for (std::size_t u = 0; u < samples.size(); ++u) {
          if (samples[u].ap == ap && eligible(u)) {
            const double ratio = airtime_ratio(samples[u]);
            if (ratio > worst) {  // strict: ties keep the lower user id
              worst = ratio;
              victim = u;
            }
          }
        }
        return victim;
      };
      // A fault-degraded user's airtime economics are the fault's doing,
      // not its own: do not double-punish it as the victim while any
      // non-faulted candidate exists. Only when every transmitting user
      // on the AP is fault-degraded does someone still have to shed.
      std::size_t victim = worst_ratio_user([&](std::size_t u) {
        return transmitting(u) && !samples[u].fault_degraded;
      });
      if (victim == samples.size()) {
        victim =
            worst_ratio_user([&](std::size_t u) { return transmitting(u); });
      } else {
        const std::size_t unconditional =
            worst_ratio_user([&](std::size_t u) { return transmitting(u); });
        if (unconditional < samples.size() && unconditional != victim &&
            samples[unconditional].fault_degraded) {
          ++counters_[unconditional].fault_spares;
        }
      }
      if (victim < samples.size() && state_[victim] == State::kDegraded &&
          now - degraded_at_[victim] < config_.evict_grace) {
        // Too fresh to evict: shed from the worst admitted user instead
        // (if any); otherwise keep the dwell armed and retry next window.
        const std::size_t fallback = worst_ratio_user([&](std::size_t u) {
          return state_[u] == State::kAdmitted && !samples[u].fault_degraded;
        });
        victim = fallback < samples.size()
                     ? fallback
                     : worst_ratio_user([&](std::size_t u) {
                         return state_[u] == State::kAdmitted;
                       });
      }
      if (victim < samples.size()) {
        if (state_[victim] == State::kAdmitted) {
          state_[victim] = State::kDegraded;
          degraded_at_[victim] = now;
          ++counters_[victim].degrades;
        } else {
          state_[victim] = State::kEvicted;
          evicted_at_[victim] = now;
          ++counters_[victim].evictions;
        }
        overload_windows_[ap] = 0;  // dwell again before the next demotion
      }
    } else if (headroom_windows_[ap] >= config_.dwell_windows) {
      // Recover gently: one promotion per dwell period, degraded users
      // first (they are closest to whole), then backoff-expired evictees.
      std::size_t promoted = samples.size();
      for (std::size_t u = 0; u < samples.size(); ++u) {
        if (samples[u].ap == ap && state_[u] == State::kDegraded &&
            !samples[u].fault_degraded) {
          state_[u] = State::kAdmitted;
          promoted = u;
          break;
        }
      }
      if (promoted == samples.size()) {
        for (std::size_t u = 0; u < samples.size(); ++u) {
          // Probation composes with the fault/quarantine window: the
          // backoff clock may have run out, but a user still marked
          // fault-degraded stays out until the fault clears too.
          if (samples[u].ap == ap && state_[u] == State::kEvicted &&
              !samples[u].fault_degraded &&
              now - evicted_at_[u] >= config_.readmit_backoff) {
            state_[u] = State::kDegraded;  // probation before full service
            degraded_at_[u] = now;
            promoted = u;
            break;
          }
        }
      }
      if (promoted < samples.size()) {
        ++counters_[promoted].readmissions;
        headroom_windows_[ap] = 0;
      }
    }
  }
}

}  // namespace movr::arena
