#include <arena/lease.hpp>

#include <algorithm>

namespace movr::arena {

ReflectorArbiter::ReflectorArbiter(std::size_t reflectors, std::size_t users,
                                   Config config)
    : config_{config},
      table_(reflectors),
      user_stats_(users),
      touched_(reflectors, std::vector<std::uint8_t>(users, 0)),
      fast_track_credit_(users, sim::Duration::zero()) {
  for (Entry& entry : table_) {
    entry.waiters.resize(users);
  }
}

double ReflectorArbiter::priority(const WaitEntry& w,
                                  sim::TimePoint now) const {
  return config_.aging_per_second * sim::to_seconds(now - w.first_wait);
}

std::optional<std::size_t> ReflectorArbiter::top_waiter(
    const Entry& entry, sim::TimePoint now) const {
  std::optional<std::size_t> best;
  double best_priority = -1.0;
  for (std::size_t u = 0; u < entry.waiters.size(); ++u) {
    const WaitEntry& w = entry.waiters[u];
    if (!w.waiting || now - w.last_request > config_.wait_ttl) {
      continue;  // gave up (blockage cleared, or found another reflector)
    }
    const double p = priority(w, now);
    if (p > best_priority) {  // strict: equal priority keeps the lower id
      best_priority = p;
      best = u;
    }
  }
  return best;
}

void ReflectorArbiter::grant(Entry& entry, std::size_t user,
                             sim::TimePoint now) {
  entry.holder = user;
  entry.lease_expiry = now + config_.lease_duration;
  entry.reserved.reset();
  entry.waiters[user] = WaitEntry{};
  ++stats_.grants;
  ++user_stats_[user].grants;
}

void ReflectorArbiter::register_wait(Entry& entry, std::size_t user,
                                     sim::TimePoint now) {
  WaitEntry& w = entry.waiters[user];
  if (!w.waiting) {
    w.waiting = true;
    w.first_wait = now;
    if (fast_track_credit_[user] > sim::Duration::zero()) {
      // Displaced holder: re-enter the queue with pre-aged priority so a
      // quarantine failover does not also send it to the back of the line.
      w.first_wait = now - fast_track_credit_[user];
      fast_track_credit_[user] = sim::Duration::zero();
      ++stats_.fast_tracks;
    }
  }
  w.last_request = now;
}

bool ReflectorArbiter::acquire(std::size_t user, std::size_t r,
                               sim::TimePoint now) {
  Entry& entry = table_.at(r);
  mark_touched(user, r);
  if (entry.device_quarantined && entry.holder != user) {
    // Benched device: bounce without registering a wait entry — nobody
    // should age priority against a reflector that cannot be leased. (A
    // surviving holder may still refresh below; failover strips it.)
    ++stats_.denials;
    ++stats_.quarantine_denials;
    ++user_stats_[user].denials;
    ++user_stats_[user].quarantine_denials;
    return false;
  }
  if (entry.holder == user) {
    entry.lease_expiry = now + config_.lease_duration;  // re-begin: refresh
    return true;
  }
  if (entry.holder.has_value()) {
    // Held by someone else. Under FCFS that is the end of the story; under
    // aging the denial itself is the wait signal that eventually expires
    // the holder (retries keep the entry live, first_wait keeps aging).
    if (config_.policy == Policy::kPriorityAging) {
      register_wait(entry, user, now);
    }
    ++stats_.denials;
    ++user_stats_[user].denials;
    return false;
  }
  // Free — but possibly reserved for an aged-out waiter.
  if (config_.policy == Policy::kPriorityAging && entry.reserved.has_value()) {
    // A reservation only binds while the reserved waiter is still live.
    // Without this check a waiter whose wait_ttl expired in the very tick
    // its reservation was granted (it stopped retrying — its blockage
    // cleared) leaves a dangling reservation that blocks everyone for the
    // full reserve_ttl.
    const WaitEntry& rw = entry.waiters[*entry.reserved];
    const bool reserved_live =
        rw.waiting && now - rw.last_request <= config_.wait_ttl;
    if (!reserved_live) {
      ++stats_.stale_reservations;
    }
    if (reserved_live && now <= entry.reserve_expiry &&
        *entry.reserved != user) {
      register_wait(entry, user, now);
      ++stats_.denials;
      ++user_stats_[user].denials;
      return false;
    }
    entry.reserved.reset();  // ours, lapsed, or stale: free-for-all again
  }
  grant(entry, user, now);
  return true;
}

bool ReflectorArbiter::renew(std::size_t user, std::size_t r,
                             sim::TimePoint now) {
  Entry& entry = table_.at(r);
  if (entry.holder != user) {
    return false;  // already lost it (defensive; coordinator syncs state)
  }
  if (config_.policy == Policy::kFcfs) {
    return true;  // FCFS never expires a lease
  }
  const auto winner = top_waiter(entry, now);
  if (winner.has_value()) {
    if (now >= entry.lease_expiry &&
        priority(entry.waiters[*winner], now) > config_.holder_bonus) {
      // Aged out: take the reflector back and hold it for the winner —
      // the winner's own next acquire (it retries every frame while
      // blocked) claims the reservation deterministically.
      entry.holder.reset();
      entry.reserved = winner;
      entry.reserve_expiry = now + config_.reserve_ttl;
      ++stats_.revocations;
      ++user_stats_[user].revocations;
      return false;
    }
    // Contended: the term keeps running down — extending it here would
    // make expiry unreachable (renewals land every control tick) and
    // starve every waiter. The holder keeps the remaining term, plus
    // however long the winner still needs to out-age the holder bonus.
  } else {
    entry.lease_expiry = now + config_.lease_duration;  // uncontended
  }
  ++stats_.renewals;
  return true;
}

void ReflectorArbiter::set_device_quarantined(std::size_t r,
                                              bool quarantined) {
  table_.at(r).device_quarantined = quarantined;
}

std::optional<std::size_t> ReflectorArbiter::strip_holder(std::size_t r) {
  Entry& entry = table_.at(r);
  const std::optional<std::size_t> ex = entry.holder;
  entry.holder.reset();
  entry.reserved.reset();
  if (ex.has_value()) {
    mark_touched(*ex, r);
    ++stats_.revocations;
    ++user_stats_[*ex].revocations;
  }
  return ex;
}

void ReflectorArbiter::fast_track(std::size_t user, sim::Duration head_start) {
  fast_track_credit_.at(user) =
      std::max(fast_track_credit_[user], head_start);
}

void ReflectorArbiter::release(std::size_t user, std::size_t r,
                               sim::TimePoint now) {
  Entry& entry = table_.at(r);
  if (entry.holder != user) {
    return;
  }
  entry.holder.reset();
  if (config_.policy == Policy::kPriorityAging) {
    // Waiters were aging against us: honor the queue on the way out too.
    const auto winner = top_waiter(entry, now);
    if (winner.has_value()) {
      entry.reserved = winner;
      entry.reserve_expiry = now + config_.reserve_ttl;
    }
  }
}

}  // namespace movr::arena
