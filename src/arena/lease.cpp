#include <arena/lease.hpp>

namespace movr::arena {

ReflectorArbiter::ReflectorArbiter(std::size_t reflectors, std::size_t users,
                                   Config config)
    : config_{config}, table_(reflectors), user_stats_(users) {
  for (Entry& entry : table_) {
    entry.waiters.resize(users);
  }
}

double ReflectorArbiter::priority(const WaitEntry& w,
                                  sim::TimePoint now) const {
  return config_.aging_per_second * sim::to_seconds(now - w.first_wait);
}

std::optional<std::size_t> ReflectorArbiter::top_waiter(
    const Entry& entry, sim::TimePoint now) const {
  std::optional<std::size_t> best;
  double best_priority = -1.0;
  for (std::size_t u = 0; u < entry.waiters.size(); ++u) {
    const WaitEntry& w = entry.waiters[u];
    if (!w.waiting || now - w.last_request > config_.wait_ttl) {
      continue;  // gave up (blockage cleared, or found another reflector)
    }
    const double p = priority(w, now);
    if (p > best_priority) {  // strict: equal priority keeps the lower id
      best_priority = p;
      best = u;
    }
  }
  return best;
}

void ReflectorArbiter::grant(Entry& entry, std::size_t user,
                             sim::TimePoint now) {
  entry.holder = user;
  entry.lease_expiry = now + config_.lease_duration;
  entry.reserved.reset();
  entry.waiters[user] = WaitEntry{};
  ++stats_.grants;
  ++user_stats_[user].grants;
}

bool ReflectorArbiter::acquire(std::size_t user, std::size_t r,
                               sim::TimePoint now) {
  Entry& entry = table_.at(r);
  if (entry.holder == user) {
    entry.lease_expiry = now + config_.lease_duration;  // re-begin: refresh
    return true;
  }
  if (entry.holder.has_value()) {
    // Held by someone else. Under FCFS that is the end of the story; under
    // aging the denial itself is the wait signal that eventually expires
    // the holder (retries keep the entry live, first_wait keeps aging).
    if (config_.policy == Policy::kPriorityAging) {
      WaitEntry& w = entry.waiters[user];
      if (!w.waiting) {
        w.waiting = true;
        w.first_wait = now;
      }
      w.last_request = now;
    }
    ++stats_.denials;
    ++user_stats_[user].denials;
    return false;
  }
  // Free — but possibly reserved for an aged-out waiter.
  if (config_.policy == Policy::kPriorityAging && entry.reserved.has_value()) {
    if (now <= entry.reserve_expiry && *entry.reserved != user) {
      WaitEntry& w = entry.waiters[user];
      if (!w.waiting) {
        w.waiting = true;
        w.first_wait = now;
      }
      w.last_request = now;
      ++stats_.denials;
      ++user_stats_[user].denials;
      return false;
    }
    entry.reserved.reset();  // ours, or lapsed: free-for-all again
  }
  grant(entry, user, now);
  return true;
}

bool ReflectorArbiter::renew(std::size_t user, std::size_t r,
                             sim::TimePoint now) {
  Entry& entry = table_.at(r);
  if (entry.holder != user) {
    return false;  // already lost it (defensive; coordinator syncs state)
  }
  if (config_.policy == Policy::kFcfs) {
    return true;  // FCFS never expires a lease
  }
  const auto winner = top_waiter(entry, now);
  if (winner.has_value()) {
    if (now >= entry.lease_expiry &&
        priority(entry.waiters[*winner], now) > config_.holder_bonus) {
      // Aged out: take the reflector back and hold it for the winner —
      // the winner's own next acquire (it retries every frame while
      // blocked) claims the reservation deterministically.
      entry.holder.reset();
      entry.reserved = winner;
      entry.reserve_expiry = now + config_.reserve_ttl;
      ++stats_.revocations;
      ++user_stats_[user].revocations;
      return false;
    }
    // Contended: the term keeps running down — extending it here would
    // make expiry unreachable (renewals land every control tick) and
    // starve every waiter. The holder keeps the remaining term, plus
    // however long the winner still needs to out-age the holder bonus.
  } else {
    entry.lease_expiry = now + config_.lease_duration;  // uncontended
  }
  ++stats_.renewals;
  return true;
}

void ReflectorArbiter::release(std::size_t user, std::size_t r,
                               sim::TimePoint now) {
  Entry& entry = table_.at(r);
  if (entry.holder != user) {
    return;
  }
  entry.holder.reset();
  if (config_.policy == Policy::kPriorityAging) {
    // Waiters were aging against us: honor the queue on the way out too.
    const auto winner = top_waiter(entry, now);
    if (winner.has_value()) {
      entry.reserved = winner;
      entry.reserve_expiry = now + config_.reserve_ttl;
    }
  }
}

}  // namespace movr::arena
