// Mutual interference between concurrent beams in a shared room.
//
// N users on K APs means up to K concurrent transmissions (same-AP users
// are airtime-multiplexed, not concurrent — that is what
// ChannelState::airtime_share models). Each foreign AP's beam, and each
// leased reflector's re-radiated beam, leaks some power into a victim
// headset's aperture; narrow 60 GHz beams make that leakage small but
// angle-dependent — a victim whose boresight happens to sweep past an
// aggressor eats orders of magnitude more than one pointed away.
//
// No new RF model: aggressor emissions reuse the scene's own array-factor
// and multipath machinery (phy::received_power / wideband_power over the
// victim room's ray paths), exactly as the in-band signal does. The sum of
// interference powers is folded into an SNR penalty,
//
//     penalty_dB = 10 log10(1 + I / N0),
//
// i.e. the dB gap between SNR and SINR, which the session subtracts from
// the strategy's true SNR before rate selection — the existing
// ChannelState path carries it from there.
#pragma once

#include <span>

#include <core/scene.hpp>

namespace movr::arena {

/// One concurrently transmitting user, as seen from a victim.
struct Interferer {
  /// The aggressor's world: its AP position/steering/power, and — when it
  /// rides a reflector — that reflector's authoritative register state
  /// (the lease makes the holder's clone the physical truth).
  const core::Scene* scene{nullptr};
  /// Set while the aggressor's link is via a reflector: the reflector's
  /// TX array re-radiates amplified power into the room, and the AP's
  /// beam is pointed at the reflector rather than its own headset.
  bool via_reflector{false};
  std::size_t reflector{0};
};

struct InterferenceConfig {
  /// AP positions closer than this are the same physical AP — same-AP
  /// users share airtime instead of interfering.
  double same_ap_epsilon_m{0.05};
};

/// Total interference power arriving at the victim's headset from every
/// aggressor (foreign APs + their leased reflectors), over the victim
/// room's ray paths at the victim's current steering.
rf::DbmPower interference_at_headset(const core::Scene& victim,
                                     std::span<const Interferer> aggressors,
                                     const InterferenceConfig& config);

/// The SNR -> SINR gap in dB (>= 0) for that interference level.
double sinr_penalty_db(const core::Scene& victim,
                       std::span<const Interferer> aggressors,
                       const InterferenceConfig& config);

}  // namespace movr::arena
