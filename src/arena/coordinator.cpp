#include <arena/coordinator.hpp>

#include <algorithm>
#include <cstring>
#include <utility>

#include <core/gain_control.hpp>
#include <sim/rng.hpp>

namespace movr::arena {

namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::size_t ap_count_of(const Coordinator::Config& config) {
  return config.ap_positions.empty() ? 1 : config.ap_positions.size();
}

}  // namespace

std::uint64_t qoe_fingerprint(const vr::QoeReport& report) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, report.frames);
  mix(h, report.glitched_frames);
  mix(h, report.stall_events);
  mix(h, static_cast<std::uint64_t>(report.longest_stall.count()));
  mix(h, bits(report.mean_snr_db));
  mix(h, bits(report.min_snr_db));
  mix(h, bits(report.mean_rate_mbps));
  if (report.transport.has_value()) {
    const net::TransportMetrics& t = *report.transport;
    mix(h, t.frames_emitted);
    mix(h, t.frames_on_time);
    mix(h, t.frames_late);
    mix(h, t.frames_dropped_queue);
    mix(h, t.frames_dropped_arq);
    mix(h, t.frames_missed);
    mix(h, t.frames_unresolved);
    mix(h, t.deadline_misses);
    mix(h, t.packets_enqueued);
    mix(h, t.packets_delivered);
    mix(h, t.bytes_delivered);
    mix(h, t.packets_dropped);
    mix(h, t.packets_in_flight);
    mix(h, t.retransmits);
    mix(h, t.duplicates);
    mix(h, t.speculative_enqueued);
    mix(h, t.speculative_dups);
    mix(h, t.speculative_drops);
    mix(h, t.speculative_saves);
    mix(h, t.parity_enqueued);
    mix(h, t.parity_delivered);
    mix(h, t.packets_recovered);
    mix(h, t.packets_recovered_delivered);
    mix(h, t.fec_frames_protected);
    mix(h, t.fec_enables);
    mix(h, t.histogram.total());
    mix(h, bits(t.p50_ms));
    mix(h, bits(t.p95_ms));
    mix(h, bits(t.p99_ms));
    mix(h, bits(t.airtime_share_min));
    mix(h, bits(t.interference_db_max));
    mix(h, t.interfered_ticks);
  }
  if (report.burst.has_value()) {
    mix(h, report.burst->steps);
    mix(h, report.burst->steps_bad);
    mix(h, report.burst->bursts);
    mix(h, report.burst->forced_bad);
    mix(h, report.burst->longest_burst_steps);
  }
  if (report.predictive.has_value()) {
    mix(h, static_cast<std::uint64_t>(report.predictive->risk_windows));
    mix(h, static_cast<std::uint64_t>(report.predictive->proactive_handovers));
    mix(h, static_cast<std::uint64_t>(report.predictive->mispredictions));
  }
  return h;
}

Coordinator::UserWorld Coordinator::build_user_world(
    const core::Scene& prototype, const Config& config, std::size_t user) {
  UserWorld world{prototype.clone(), {}, {}, {}, 0, 0.0};
  const sim::RngRegistry rngs{config.seed};
  if (!config.ap_positions.empty()) {
    world.ap_index = user % config.ap_positions.size();
    world.scene.ap().node().set_position(config.ap_positions[world.ap_index]);
    if (!config.ap_orientations.empty()) {
      world.scene.ap().node().set_orientation(
          config.ap_orientations[world.ap_index %
                                 config.ap_orientations.size()]);
    }
  }
  // Calibrate every reflector against THIS user's AP: each AP keeps its own
  // register shadow (RX angle, gain code) and programs the reflector from
  // it when its handover commits — the lease guarantees no two shadows are
  // live on the hardware at once.
  auto cal_rng = rngs.stream("arena.cal", user);
  for (std::size_t i = 0; i < world.scene.reflector_count(); ++i) {
    core::MovrReflector& reflector = world.scene.reflector(i);
    reflector.front_end().steer_rx(
        world.scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        world.scene.true_reflector_angle_to_headset(reflector));
    world.scene.ap().node().steer_toward(reflector.position());
    core::GainController::run(reflector.front_end(),
                              world.scene.reflector_input(reflector), cal_rng);
  }
  world.manager_rng = rngs.stream("arena.mgr", user);
  world.link_config = config.link;
  world.session_config = config.session;
  world.session_config.rate_control_seed = rngs.stream("arena.rate", user)();
  if (world.session_config.transport.has_value()) {
    world.session_config.transport->seed = rngs.stream("arena.net", user)();
    world.session_config.transport->source.seed =
        rngs.stream("arena.src", user)();
  }
  if (world.session_config.burst_loss.has_value()) {
    world.session_config.burst_loss->seed = rngs.stream("arena.burst", user)();
  }
  const auto& session = world.session_config;
  world.offered_mbps =
      session.transport.has_value() && session.transport->source.target_mbps > 0.0
          ? session.transport->source.target_mbps
          : session.display.required_mbps();
  return world;
}

Coordinator::User::User(sim::Simulator& simulator, UserWorld world,
                        const MotionFactory& motion_factory,
                        const ScriptFactory& script_factory, std::size_t index)
    : scene{std::move(world.scene)},
      motion{motion_factory ? motion_factory(index, scene) : nullptr},
      script{script_factory
                 ? std::optional<vr::BlockageScript>{script_factory(index)}
                 : std::nullopt},
      strategy{simulator, scene, world.manager_rng, world.link_config},
      session{simulator,          scene,
              strategy,           motion.get(),
              script.has_value() ? &*script : nullptr,
              world.session_config},
      ap_index{world.ap_index},
      offered_mbps{world.offered_mbps} {}

Coordinator::Coordinator(sim::Simulator& simulator,
                         const core::Scene& prototype, Config config,
                         MotionFactory motion, ScriptFactory script)
    : simulator_{simulator},
      config_{std::move(config)},
      motion_factory_{std::move(motion)},
      script_factory_{std::move(script)},
      arbiter_{prototype.reflector_count(), config_.users, config_.arbiter},
      admission_{config_.users, ap_count_of(config_), config_.admission},
      share_(config_.users, 1.0) {
  control_ticks_per_window_ = std::max<int>(
      1, static_cast<int>(config_.admission_window.count() /
                          std::max<std::int64_t>(
                              1, config_.control_interval.count())));
  users_.reserve(config_.users);
  for (std::size_t u = 0; u < config_.users; ++u) {
    UserWorld world = build_user_world(prototype, config_, u);
    if (config_.user_recorder) {
      log::Recorder* recorder = config_.user_recorder(u);
      world.session_config.recorder = recorder;
      world.link_config.recorder = recorder;
    }
    world.link_config.reflector_acquire = [this, u](std::size_t r) {
      return try_acquire(u, r);
    };
    world.link_config.reflector_release = [this, u](std::size_t r) {
      arbiter_.release(u, r, simulator_.now());
    };
    world.session_config.snr_penalty_db = [this, u] {
      return penalty_for(u);
    };
    world.session_config.mcs_index_limit = [this, u] {
      return admission_.mcs_cap(u);
    };
    world.session_config.airtime_share = [this, u] { return share_[u]; };
    users_.push_back(std::make_unique<User>(
        simulator_, std::move(world), motion_factory_, script_factory_, u));
  }
  recompute_shares();
}

Coordinator::~Coordinator() = default;

bool Coordinator::try_acquire(std::size_t user, std::size_t reflector) {
  if (!admission_.transmitting(user)) {
    return false;  // an evicted user has no business holding a reflector
  }
  return arbiter_.acquire(user, reflector, simulator_.now());
}

double Coordinator::penalty_for(std::size_t user) {
  interferer_scratch_.clear();
  for (std::size_t v = 0; v < users_.size(); ++v) {
    if (v == user || !admission_.transmitting(v)) {
      continue;
    }
    const core::LinkManager& manager = users_[v]->strategy.manager();
    Interferer aggressor;
    aggressor.scene = &users_[v]->scene;
    aggressor.via_reflector =
        manager.mode() == core::LinkManager::Mode::kViaReflector;
    aggressor.reflector = manager.active_reflector();
    interferer_scratch_.push_back(aggressor);
  }
  if (interferer_scratch_.empty()) {
    return 0.0;
  }
  return sinr_penalty_db(users_[user]->scene, interferer_scratch_,
                         config_.interference);
}

void Coordinator::control_tick() {
  const sim::TimePoint now = simulator_.now();
  // Lease keep-alives: a renewal that fails means the arbiter aged the
  // lease away — enforce it on the manager immediately.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    core::LinkManager& manager = users_[u]->strategy.manager();
    const auto leased = manager.leased_reflector();
    if (leased.has_value() && !arbiter_.renew(u, *leased, now)) {
      manager.revoke_reflector(*leased);
      if (config_.recorder != nullptr) {
        config_.recorder->record(
            log::EventKind::kLeaseRevoke,
            {{"user", static_cast<std::int64_t>(u)},
             {"reflector", static_cast<std::int64_t>(*leased)}});
      }
    }
  }
  if (++ticks_since_admission_ >= control_ticks_per_window_) {
    ticks_since_admission_ = 0;
    admission_tick(now);
  }
  recompute_shares();
  if (config_.recorder != nullptr) {
    config_.recorder->record(
        log::EventKind::kCoordTick,
        {{"users", static_cast<std::int64_t>(users_.size())}});
  }
  if (now + config_.control_interval <= end_) {
    simulator_.at(now + config_.control_interval, [this] { control_tick(); });
  }
}

void Coordinator::admission_tick(sim::TimePoint now) {
  sample_scratch_.resize(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    User& user = *users_[u];
    AdmissionController::Sample& sample = sample_scratch_[u];
    sample.ap = user.ap_index;
    sample.offered_mbps = user.offered_mbps;
    sample.mcs_rate_mbps = user.session.last_mcs_rate_mbps();
    sample.miss_fraction = 0.0;
    if (const net::Transport* transport = user.session.transport()) {
      const std::uint64_t misses = transport->live_deadline_misses();
      const std::uint64_t frames = transport->live_frames_emitted();
      const std::uint64_t dm = misses - user.last_misses;
      const std::uint64_t df = frames - user.last_frames;
      sample.miss_fraction =
          df > 0 ? static_cast<double>(dm) / static_cast<double>(df) : 0.0;
      user.last_misses = misses;
      user.last_frames = frames;
    }
  }
  if (config_.recorder != nullptr) {
    admission_state_scratch_.resize(users_.size());
    for (std::size_t u = 0; u < users_.size(); ++u) {
      admission_state_scratch_[u] = admission_.state(u);
    }
  }
  admission_.on_window(sample_scratch_, now);
  if (config_.recorder != nullptr) {
    for (std::size_t u = 0; u < users_.size(); ++u) {
      const AdmissionController::State before = admission_state_scratch_[u];
      const AdmissionController::State after = admission_.state(u);
      if (before == after) {
        continue;
      }
      log::EventKind kind = log::EventKind::kAdmissionReadmit;
      if (after == AdmissionController::State::kEvicted) {
        kind = log::EventKind::kAdmissionEvict;
      } else if (after == AdmissionController::State::kDegraded &&
                 before == AdmissionController::State::kAdmitted) {
        kind = log::EventKind::kAdmissionDegrade;
      }
      config_.recorder->record(kind, {{"user", static_cast<std::int64_t>(u)}});
    }
  }
  // A freshly evicted user must also surrender any reflector it holds.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    if (admission_.transmitting(u)) {
      continue;
    }
    core::LinkManager& manager = users_[u]->strategy.manager();
    const auto leased = manager.leased_reflector();
    if (leased.has_value()) {
      arbiter_.release(u, *leased, now);
      manager.revoke_reflector(*leased);
    }
  }
}

void Coordinator::recompute_shares() {
  const std::size_t aps = ap_count_of(config_);
  ap_weight_scratch_.assign(aps, 0.0);
  for (std::size_t u = 0; u < users_.size(); ++u) {
    ap_weight_scratch_[users_[u]->ap_index] += admission_.weight(u);
  }
  for (std::size_t u = 0; u < users_.size(); ++u) {
    const double weight = admission_.weight(u);
    const double total = ap_weight_scratch_[users_[u]->ap_index];
    share_[u] = weight > 0.0 && total > 0.0 ? weight / total : 1.0;
  }
}

void Coordinator::ledger_tick() {
  for (auto& user : users_) {
    if (const net::Transport* transport = user->session.transport()) {
      ++user->ledger_checks;
      if (!transport->ledger_closes()) {
        ++user->ledger_violations;
      }
    }
  }
  const sim::TimePoint now = simulator_.now();
  if (now + config_.ledger_check_interval <= end_) {
    simulator_.at(now + config_.ledger_check_interval,
                  [this] { ledger_tick(); });
  }
}

std::vector<Coordinator::UserResult> Coordinator::run() {
  const sim::TimePoint start = simulator_.now();
  end_ = start + config_.session.duration;
  for (auto& user : users_) {
    user->session.start();  // user order = event insertion order = tie order
  }
  if (config_.control_interval.count() > 0) {
    simulator_.at(start + config_.control_interval,
                  [this] { control_tick(); });
  }
  if (config_.ledger_check_interval.count() > 0 &&
      config_.session.transport.has_value()) {
    simulator_.at(start + config_.ledger_check_interval,
                  [this] { ledger_tick(); });
  }
  simulator_.run_until(end_);

  std::vector<UserResult> results;
  results.reserve(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    UserResult result;
    result.report = users_[u]->session.finish();
    const core::LinkManager& manager = users_[u]->strategy.manager();
    result.link_stats = manager.stats();
    if (result.report.arena.has_value()) {
      vr::ArenaLinkStats& a = *result.report.arena;
      a.reflector_denials = manager.stats().denied_handovers;
      a.lease_grants = static_cast<int>(arbiter_.user_stats(u).grants);
      a.lease_revocations =
          static_cast<int>(arbiter_.user_stats(u).revocations);
      a.admission_degrades = admission_.counters(u).degrades;
      a.admission_evictions = admission_.counters(u).evictions;
      a.admission_readmissions = admission_.counters(u).readmissions;
      a.final_admission_state = static_cast<int>(admission_.state(u));
      a.ledger_checks = users_[u]->ledger_checks;
      a.ledger_violations = users_[u]->ledger_violations;
    }
    results.push_back(std::move(result));
  }
  return results;
}

vr::QoeReport Coordinator::standalone_run(const core::Scene& prototype,
                                          const Config& config,
                                          const MotionFactory& motion,
                                          const ScriptFactory& script,
                                          std::size_t user) {
  sim::Simulator simulator;
  UserWorld world = build_user_world(prototype, config, user);
  User standalone{simulator, std::move(world), motion, script, user};
  return standalone.session.run();
}

}  // namespace movr::arena
