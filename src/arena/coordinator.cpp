#include <arena/coordinator.hpp>

#include <algorithm>
#include <cstring>
#include <utility>

#include <core/gain_control.hpp>
#include <sim/rng.hpp>

namespace movr::arena {

namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::size_t ap_count_of(const Coordinator::Config& config) {
  return config.ap_positions.empty() ? 1 : config.ap_positions.size();
}

}  // namespace

std::uint64_t qoe_fingerprint(const vr::QoeReport& report) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, report.frames);
  mix(h, report.glitched_frames);
  mix(h, report.stall_events);
  mix(h, static_cast<std::uint64_t>(report.longest_stall.count()));
  mix(h, bits(report.mean_snr_db));
  mix(h, bits(report.min_snr_db));
  mix(h, bits(report.mean_rate_mbps));
  if (report.transport.has_value()) {
    const net::TransportMetrics& t = *report.transport;
    mix(h, t.frames_emitted);
    mix(h, t.frames_on_time);
    mix(h, t.frames_late);
    mix(h, t.frames_dropped_queue);
    mix(h, t.frames_dropped_arq);
    mix(h, t.frames_missed);
    mix(h, t.frames_unresolved);
    mix(h, t.deadline_misses);
    mix(h, t.packets_enqueued);
    mix(h, t.packets_delivered);
    mix(h, t.bytes_delivered);
    mix(h, t.packets_dropped);
    mix(h, t.packets_in_flight);
    mix(h, t.retransmits);
    mix(h, t.duplicates);
    mix(h, t.speculative_enqueued);
    mix(h, t.speculative_dups);
    mix(h, t.speculative_drops);
    mix(h, t.speculative_saves);
    mix(h, t.parity_enqueued);
    mix(h, t.parity_delivered);
    mix(h, t.packets_recovered);
    mix(h, t.packets_recovered_delivered);
    mix(h, t.fec_frames_protected);
    mix(h, t.fec_enables);
    mix(h, t.histogram.total());
    mix(h, bits(t.p50_ms));
    mix(h, bits(t.p95_ms));
    mix(h, bits(t.p99_ms));
    mix(h, bits(t.airtime_share_min));
    mix(h, bits(t.interference_db_max));
    mix(h, t.interfered_ticks);
  }
  if (report.burst.has_value()) {
    mix(h, report.burst->steps);
    mix(h, report.burst->steps_bad);
    mix(h, report.burst->bursts);
    mix(h, report.burst->forced_bad);
    mix(h, report.burst->longest_burst_steps);
  }
  if (report.predictive.has_value()) {
    mix(h, static_cast<std::uint64_t>(report.predictive->risk_windows));
    mix(h, static_cast<std::uint64_t>(report.predictive->proactive_handovers));
    mix(h, static_cast<std::uint64_t>(report.predictive->mispredictions));
  }
  return h;
}

Coordinator::UserWorld Coordinator::build_user_world(
    const core::Scene& prototype, const Config& config, std::size_t user) {
  UserWorld world{prototype.clone(), {}, {}, {}, 0, 0.0};
  const sim::RngRegistry rngs{config.seed};
  if (!config.ap_positions.empty()) {
    world.ap_index = user % config.ap_positions.size();
    world.scene.ap().node().set_position(config.ap_positions[world.ap_index]);
    if (!config.ap_orientations.empty()) {
      world.scene.ap().node().set_orientation(
          config.ap_orientations[world.ap_index %
                                 config.ap_orientations.size()]);
    }
  }
  // Calibrate every reflector against THIS user's AP: each AP keeps its own
  // register shadow (RX angle, gain code) and programs the reflector from
  // it when its handover commits — the lease guarantees no two shadows are
  // live on the hardware at once.
  auto cal_rng = rngs.stream("arena.cal", user);
  for (std::size_t i = 0; i < world.scene.reflector_count(); ++i) {
    core::MovrReflector& reflector = world.scene.reflector(i);
    reflector.front_end().steer_rx(
        world.scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        world.scene.true_reflector_angle_to_headset(reflector));
    world.scene.ap().node().steer_toward(reflector.position());
    core::GainController::run(reflector.front_end(),
                              world.scene.reflector_input(reflector), cal_rng);
  }
  world.manager_rng = rngs.stream("arena.mgr", user);
  world.link_config = config.link;
  world.session_config = config.session;
  world.session_config.rate_control_seed = rngs.stream("arena.rate", user)();
  if (world.session_config.transport.has_value()) {
    world.session_config.transport->seed = rngs.stream("arena.net", user)();
    world.session_config.transport->source.seed =
        rngs.stream("arena.src", user)();
  }
  if (world.session_config.burst_loss.has_value()) {
    world.session_config.burst_loss->seed = rngs.stream("arena.burst", user)();
  }
  const auto& session = world.session_config;
  world.offered_mbps =
      session.transport.has_value() && session.transport->source.target_mbps > 0.0
          ? session.transport->source.target_mbps
          : session.display.required_mbps();
  return world;
}

Coordinator::User::User(sim::Simulator& simulator, UserWorld world,
                        const MotionFactory& motion_factory,
                        const ScriptFactory& script_factory, std::size_t index)
    : scene{std::move(world.scene)},
      motion{motion_factory ? motion_factory(index, scene) : nullptr},
      script{script_factory
                 ? std::optional<vr::BlockageScript>{script_factory(index)}
                 : std::nullopt},
      strategy{simulator, scene, world.manager_rng, world.link_config},
      session{simulator,          scene,
              strategy,           motion.get(),
              script.has_value() ? &*script : nullptr,
              world.session_config},
      ap_index{world.ap_index},
      offered_mbps{world.offered_mbps} {}

Coordinator::Coordinator(sim::Simulator& simulator,
                         const core::Scene& prototype, Config config,
                         MotionFactory motion, ScriptFactory script)
    : simulator_{simulator},
      config_{std::move(config)},
      motion_factory_{std::move(motion)},
      script_factory_{std::move(script)},
      arbiter_{prototype.reflector_count(), config_.users, config_.arbiter},
      admission_{config_.users, ap_count_of(config_), config_.admission},
      share_(config_.users, 1.0),
      device_health_{config_.device_health},
      ap_brownout_db_(ap_count_of(config_), 0.0),
      active_reflector_faults_(prototype.reflector_count(), 0),
      fault_until_(config_.users, sim::TimePoint{}),
      orphan_since_(prototype.reflector_count(), sim::TimePoint{}),
      orphan_armed_(prototype.reflector_count(), 0) {
  control_ticks_per_window_ = std::max<int>(
      1, static_cast<int>(config_.admission_window.count() /
                          std::max<std::int64_t>(
                              1, config_.control_interval.count())));
  users_.reserve(config_.users);
  for (std::size_t u = 0; u < config_.users; ++u) {
    UserWorld world = build_user_world(prototype, config_, u);
    if (config_.user_recorder) {
      log::Recorder* recorder = config_.user_recorder(u);
      world.session_config.recorder = recorder;
      world.link_config.recorder = recorder;
    }
    world.link_config.reflector_acquire = [this, u](std::size_t r) {
      return try_acquire(u, r);
    };
    world.link_config.reflector_release = [this, u](std::size_t r) {
      arbiter_.release(u, r, simulator_.now());
    };
    world.session_config.snr_penalty_db = [this, u] {
      return penalty_for(u);
    };
    world.session_config.mcs_index_limit = [this, u] {
      return admission_.mcs_cap(u);
    };
    world.session_config.airtime_share = [this, u] { return share_[u]; };
    users_.push_back(std::make_unique<User>(
        simulator_, std::move(world), motion_factory_, script_factory_, u));
  }
  recompute_shares();
  schedule_faults();
}

Coordinator::~Coordinator() = default;

bool Coordinator::try_acquire(std::size_t user, std::size_t reflector) {
  if (!admission_.transmitting(user)) {
    return false;  // an evicted user has no business holding a reflector
  }
  return arbiter_.acquire(user, reflector, simulator_.now());
}

double Coordinator::penalty_for(std::size_t user) {
  interferer_scratch_.clear();
  for (std::size_t v = 0; v < users_.size(); ++v) {
    if (v == user || !admission_.transmitting(v)) {
      continue;
    }
    const core::LinkManager& manager = users_[v]->strategy.manager();
    Interferer aggressor;
    aggressor.scene = &users_[v]->scene;
    aggressor.via_reflector =
        manager.mode() == core::LinkManager::Mode::kViaReflector;
    aggressor.reflector = manager.active_reflector();
    interferer_scratch_.push_back(aggressor);
  }
  // An AP brownout penalizes every attached user's SNR for the window;
  // zero outside fault windows, so the fault-free arena returns the exact
  // same doubles as before the chaos layer existed.
  const double brownout = ap_brownout_db_[users_[user]->ap_index];
  if (interferer_scratch_.empty()) {
    return brownout;
  }
  const double interference = sinr_penalty_db(
      users_[user]->scene, interferer_scratch_, config_.interference);
  return brownout > 0.0 ? brownout + interference : interference;
}

void Coordinator::control_tick() {
  const sim::TimePoint now = simulator_.now();
  // Benched devices whose backoff expired get their re-probe first, so a
  // healed reflector is leasable again within the same tick.
  device_probe_tick(now);
  // Lease keep-alives: a renewal that fails means the arbiter aged the
  // lease away — enforce it on the manager immediately.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    core::LinkManager& manager = users_[u]->strategy.manager();
    const auto leased = manager.leased_reflector();
    if (leased.has_value() && !arbiter_.renew(u, *leased, now)) {
      manager.revoke_reflector(*leased);
      if (config_.recorder != nullptr) {
        config_.recorder->record(
            log::EventKind::kLeaseRevoke,
            {{"user", static_cast<std::int64_t>(u)},
             {"reflector", static_cast<std::int64_t>(*leased)}});
      }
    }
  }
  orphan_watchdog(now);
  if (++ticks_since_admission_ >= control_ticks_per_window_) {
    ticks_since_admission_ = 0;
    admission_tick(now);
  }
  recompute_shares();
  // Lease/quarantine snapshots land after enforcement, so a verifier
  // replaying them sees the state the failover machinery actually left.
  snapshot_leases(now);
  if (config_.recorder != nullptr) {
    config_.recorder->record(
        log::EventKind::kCoordTick,
        {{"users", static_cast<std::int64_t>(users_.size())}});
  }
  if (now + config_.control_interval <= end_) {
    simulator_.at(now + config_.control_interval, [this] { control_tick(); });
  }
}

void Coordinator::schedule_faults() {
  if (config_.faults.empty()) {
    return;  // fault-free arena: the chaos machinery stays fully inert
  }
  injector_ = std::make_unique<sim::FaultInjector>(simulator_);
  device_health_.track(active_reflector_faults_.size());
  device_health_.set_recorder(config_.recorder);
  const sim::Duration sweep_tick =
      config_.control_interval.count() > 0
          ? config_.control_interval
          : sim::Duration{std::chrono::milliseconds{20}};
  for (const ArenaFault& fault : config_.faults) {
    switch (fault.kind) {
      case ArenaFault::Kind::kReflectorReboot: {
        injector_->inject_pulse(
            "arena.reboot.r" + std::to_string(fault.resource), fault.start,
            [this, fault] {
              for (auto& user : users_) {
                user->scene.reflector(fault.resource).power_cycle();
              }
              record_arena_fault(log::EventKind::kArenaFaultOpen, fault);
              on_reflector_fault(fault.resource, simulator_.now(),
                                 /*windowed=*/false);
              record_arena_fault(log::EventKind::kArenaFaultClose, fault);
            });
        break;
      }
      case ArenaFault::Kind::kReflectorGainSag: {
        auto opened = std::make_shared<bool>(false);
        injector_->inject_sweep(
            "arena.sag.r" + std::to_string(fault.resource), fault.start,
            fault.duration, sweep_tick,
            [this, fault, opened](double progress) {
              if (!*opened) {
                *opened = true;
                record_arena_fault(log::EventKind::kArenaFaultOpen, fault);
                on_reflector_fault(fault.resource,
                                   fault.start + fault.duration,
                                   /*windowed=*/true);
              }
              const rf::Decibels sag{fault.magnitude_db * progress};
              for (auto& user : users_) {
                user->scene.reflector(fault.resource)
                    .front_end()
                    .inject_gain_sag(sag);
              }
            },
            [this, fault] {
              for (auto& user : users_) {
                user->scene.reflector(fault.resource)
                    .front_end()
                    .inject_gain_sag(rf::Decibels{0.0});
              }
              on_reflector_fault_close(fault.resource);
              record_arena_fault(log::EventKind::kArenaFaultClose, fault);
            });
        break;
      }
      case ArenaFault::Kind::kApBrownout: {
        injector_->inject(
            "arena.brownout.ap" + std::to_string(fault.resource), fault.start,
            fault.duration,
            [this, fault] {
              ++chaos_.faults_applied;
              ap_brownout_db_.at(fault.resource) += fault.magnitude_db;
              const sim::TimePoint until = simulator_.now() + fault.duration +
                                           config_.fault_degraded_grace;
              for (std::size_t u = 0; u < users_.size(); ++u) {
                if (users_[u]->ap_index == fault.resource) {
                  mark_fault_degraded(u, until);
                }
              }
              record_arena_fault(log::EventKind::kArenaFaultOpen, fault);
            },
            [this, fault] {
              ap_brownout_db_.at(fault.resource) -= fault.magnitude_db;
              record_arena_fault(log::EventKind::kArenaFaultClose, fault);
            });
        break;
      }
    }
  }
}

void Coordinator::on_reflector_fault(std::size_t r, sim::TimePoint window_end,
                                     bool windowed) {
  const sim::TimePoint now = simulator_.now();
  ++chaos_.faults_applied;
  if (windowed) {
    ++active_reflector_faults_.at(r);
  }
  if (!device_health_.quarantined(r)) {
    device_health_.quarantine(r, now, "arena fault");
    ++chaos_.device_quarantines;
  }
  if (windowed) {
    // Pin the first re-probe past the window end: probing into a known
    // fault window can only fail and double the backoff.
    device_health_.extend_quarantine(r, window_end);
  }
  if (!config_.lease_failover) {
    // Tripwire mode: the holder rides the quarantined device (the offline
    // verifier must catch it). Still mark it fault-degraded so admission
    // does not double-punish the victim.
    if (const auto holder = arbiter_.holder(r)) {
      mark_fault_degraded(*holder,
                          window_end + config_.fault_degraded_grace);
    }
    return;
  }
  // Lease failover: bench the device arbiter-side, strip + revoke the
  // holder, and credit it a head start for its next wait queue.
  arbiter_.set_device_quarantined(r, true);
  const auto ex = arbiter_.strip_holder(r);
  if (ex.has_value()) {
    ++chaos_.failover_revocations;
    users_[*ex]->strategy.manager().revoke_reflector(r);
    arbiter_.fast_track(*ex, config_.fast_track_head_start);
    mark_fault_degraded(*ex, window_end + config_.fault_degraded_grace);
    if (config_.recorder != nullptr) {
      config_.recorder->record(
          log::EventKind::kLeaseRevoke,
          {{"user", static_cast<std::int64_t>(*ex)},
           {"reflector", static_cast<std::int64_t>(r)},
           {"failover", 1}});
    }
  }
}

void Coordinator::on_reflector_fault_close(std::size_t r) {
  --active_reflector_faults_.at(r);
}

void Coordinator::mark_fault_degraded(std::size_t user, sim::TimePoint until) {
  fault_until_.at(user) = std::max(fault_until_[user], until);
}

void Coordinator::device_probe_tick(sim::TimePoint now) {
  for (std::size_t r = 0; r < active_reflector_faults_.size(); ++r) {
    if (!device_health_.quarantined(r) ||
        !device_health_.probe_due(r, now)) {
      continue;
    }
    // The coordinator's probe is window-level: the device can only answer
    // clean once no fault window is open on it. (Per-user recalibration
    // after a reboot still happens through each AP's own commit path.)
    const bool good = active_reflector_faults_[r] == 0;
    device_health_.note_probe_result(r, now, good);
    if (good) {
      ++chaos_.device_restores;
      arbiter_.set_device_quarantined(r, false);
    }
  }
}

void Coordinator::orphan_watchdog(sim::TimePoint now) {
  for (std::size_t r = 0; r < orphan_since_.size(); ++r) {
    const auto holder = arbiter_.holder(r);
    bool mismatch = false;
    if (holder.has_value()) {
      const auto leased = users_[*holder]->strategy.manager().leased_reflector();
      mismatch = !leased.has_value() || *leased != r;
    }
    if (!mismatch) {
      orphan_armed_[r] = 0;
      continue;
    }
    if (orphan_armed_[r] == 0) {
      orphan_armed_[r] = 1;
      orphan_since_[r] = now;
      continue;
    }
    if (now - orphan_since_[r] > config_.orphan_grace) {
      // The manager let go (or never knew) but the arbiter still shows a
      // holder: reap it so the reflector re-enters arbitration.
      arbiter_.strip_holder(r);
      ++chaos_.orphan_leases_reaped;
      orphan_armed_[r] = 0;
      if (config_.recorder != nullptr) {
        config_.recorder->record(
            log::EventKind::kLeaseRevoke,
            {{"user", static_cast<std::int64_t>(*holder)},
             {"reflector", static_cast<std::int64_t>(r)},
             {"orphan", 1}});
      }
    }
  }
}

void Coordinator::snapshot_leases(sim::TimePoint now) {
  (void)now;
  if (config_.recorder == nullptr) {
    return;
  }
  for (std::size_t r = 0; r < orphan_since_.size(); ++r) {
    const auto holder = arbiter_.holder(r);
    config_.recorder->record(
        log::EventKind::kSnapshotLease,
        {{"r", static_cast<std::int64_t>(r)},
         {"holder", holder.has_value() ? static_cast<std::int64_t>(*holder)
                                       : std::int64_t{-1}},
         {"quar", device_health_.quarantined(r) ? 1 : 0}});
  }
}

void Coordinator::record_arena_fault(log::EventKind kind,
                                     const ArenaFault& fault) {
  if (config_.recorder == nullptr) {
    return;
  }
  config_.recorder->record(
      kind, {{"kind", static_cast<std::int64_t>(fault.kind)},
             {"res", static_cast<std::int64_t>(fault.resource)},
             {"mdb", static_cast<std::int64_t>(fault.magnitude_db * 1000.0)}});
}

void Coordinator::admission_tick(sim::TimePoint now) {
  sample_scratch_.resize(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    User& user = *users_[u];
    AdmissionController::Sample& sample = sample_scratch_[u];
    sample.ap = user.ap_index;
    sample.offered_mbps = user.offered_mbps;
    sample.mcs_rate_mbps = user.session.last_mcs_rate_mbps();
    sample.miss_fraction = 0.0;
    sample.fault_degraded = fault_degraded(u, now);
    if (sample.fault_degraded) {
      ++chaos_.fault_degraded_samples;
    }
    if (const net::Transport* transport = user.session.transport()) {
      const std::uint64_t misses = transport->live_deadline_misses();
      const std::uint64_t frames = transport->live_frames_emitted();
      const std::uint64_t dm = misses - user.last_misses;
      const std::uint64_t df = frames - user.last_frames;
      sample.miss_fraction =
          df > 0 ? static_cast<double>(dm) / static_cast<double>(df) : 0.0;
      user.last_misses = misses;
      user.last_frames = frames;
    }
  }
  if (config_.recorder != nullptr) {
    admission_state_scratch_.resize(users_.size());
    for (std::size_t u = 0; u < users_.size(); ++u) {
      admission_state_scratch_[u] = admission_.state(u);
    }
  }
  admission_.on_window(sample_scratch_, now);
  if (config_.recorder != nullptr) {
    for (std::size_t u = 0; u < users_.size(); ++u) {
      const AdmissionController::State before = admission_state_scratch_[u];
      const AdmissionController::State after = admission_.state(u);
      if (before == after) {
        continue;
      }
      log::EventKind kind = log::EventKind::kAdmissionReadmit;
      if (after == AdmissionController::State::kEvicted) {
        kind = log::EventKind::kAdmissionEvict;
      } else if (after == AdmissionController::State::kDegraded &&
                 before == AdmissionController::State::kAdmitted) {
        kind = log::EventKind::kAdmissionDegrade;
      }
      config_.recorder->record(kind, {{"user", static_cast<std::int64_t>(u)}});
    }
  }
  // A freshly evicted user must also surrender any reflector it holds.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    if (admission_.transmitting(u)) {
      continue;
    }
    core::LinkManager& manager = users_[u]->strategy.manager();
    const auto leased = manager.leased_reflector();
    if (leased.has_value()) {
      arbiter_.release(u, *leased, now);
      manager.revoke_reflector(*leased);
    }
  }
}

void Coordinator::recompute_shares() {
  const std::size_t aps = ap_count_of(config_);
  ap_weight_scratch_.assign(aps, 0.0);
  for (std::size_t u = 0; u < users_.size(); ++u) {
    ap_weight_scratch_[users_[u]->ap_index] += admission_.weight(u);
  }
  for (std::size_t u = 0; u < users_.size(); ++u) {
    const double weight = admission_.weight(u);
    const double total = ap_weight_scratch_[users_[u]->ap_index];
    share_[u] = weight > 0.0 && total > 0.0 ? weight / total : 1.0;
  }
}

void Coordinator::ledger_tick() {
  for (auto& user : users_) {
    if (const net::Transport* transport = user->session.transport()) {
      ++user->ledger_checks;
      if (!transport->ledger_closes()) {
        ++user->ledger_violations;
      }
    }
  }
  const sim::TimePoint now = simulator_.now();
  if (now + config_.ledger_check_interval <= end_) {
    simulator_.at(now + config_.ledger_check_interval,
                  [this] { ledger_tick(); });
  }
}

std::vector<Coordinator::UserResult> Coordinator::run() {
  const sim::TimePoint start = simulator_.now();
  end_ = start + config_.session.duration;
  if (config_.recorder != nullptr) {
    // Self-describing coordinator log: the offline verifier reads the
    // lease-liveness bound (invariant F) from here, no simulator needed.
    config_.recorder->record(
        log::EventKind::kParams,
        {{"tick_us", std::chrono::duration_cast<std::chrono::microseconds>(
                         config_.control_interval)
                         .count()},
         {"revoke_grace_us",
          std::chrono::duration_cast<std::chrono::microseconds>(
              config_.revoke_grace)
              .count()},
         {"reflectors", static_cast<std::int64_t>(orphan_since_.size())},
         {"users", static_cast<std::int64_t>(users_.size())}});
  }
  for (auto& user : users_) {
    user->session.start();  // user order = event insertion order = tie order
  }
  if (config_.control_interval.count() > 0) {
    simulator_.at(start + config_.control_interval,
                  [this] { control_tick(); });
  }
  if (config_.ledger_check_interval.count() > 0 &&
      config_.session.transport.has_value()) {
    simulator_.at(start + config_.ledger_check_interval,
                  [this] { ledger_tick(); });
  }
  simulator_.run_until(end_);

  std::vector<UserResult> results;
  results.reserve(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    UserResult result;
    result.report = users_[u]->session.finish();
    const core::LinkManager& manager = users_[u]->strategy.manager();
    result.link_stats = manager.stats();
    if (result.report.arena.has_value()) {
      vr::ArenaLinkStats& a = *result.report.arena;
      a.reflector_denials = manager.stats().denied_handovers;
      a.lease_grants = static_cast<int>(arbiter_.user_stats(u).grants);
      a.lease_revocations =
          static_cast<int>(arbiter_.user_stats(u).revocations);
      a.admission_degrades = admission_.counters(u).degrades;
      a.admission_evictions = admission_.counters(u).evictions;
      a.admission_readmissions = admission_.counters(u).readmissions;
      a.final_admission_state = static_cast<int>(admission_.state(u));
      a.ledger_checks = users_[u]->ledger_checks;
      a.ledger_violations = users_[u]->ledger_violations;
    }
    results.push_back(std::move(result));
  }
  return results;
}

vr::QoeReport Coordinator::standalone_run(const core::Scene& prototype,
                                          const Config& config,
                                          const MotionFactory& motion,
                                          const ScriptFactory& script,
                                          std::size_t user) {
  sim::Simulator simulator;
  UserWorld world = build_user_world(prototype, config, user);
  User standalone{simulator, std::move(world), motion, script, user};
  return standalone.session.run();
}

}  // namespace movr::arena
