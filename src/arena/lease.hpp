// Reflector lease arbitration for a shared room.
//
// In a multi-user arena the scarce resource is not spectrum — airtime is
// divisible — but the steerable reflectors: a reflector's RX/TX beams and
// gain code serve exactly one user at a time, so two blocked users wanting
// the same reflector must be *arbitrated*, not averaged. The arbiter is a
// lease table: a granted lease is exclusive and renewable; denied users
// accumulate priority by waiting (aging), and when a lease expires with a
// sufficiently aged waiter outstanding, the reflector is taken back and
// reserved for that waiter. Everything is deterministic: priority ties
// break toward the lower user id, and all decisions happen at explicit
// control-plane instants (acquire calls and renew calls), never "between"
// events.
//
// The FCFS policy (no expiry, no aging, no reservations) is the naive
// baseline bench/arena compares against: whoever grabs a reflector first
// keeps it for as long as they care to, and late-blocked users starve.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include <sim/time.hpp>

namespace movr::arena {

class ReflectorArbiter {
 public:
  enum class Policy : std::uint8_t {
    /// Leases expire; waiters age; expired leases with an aged waiter are
    /// revoked and reserved for the top waiter. Starvation-free.
    kPriorityAging,
    /// First committer keeps the reflector until it releases voluntarily.
    kFcfs,
  };

  struct Config {
    Policy policy{Policy::kPriorityAging};
    /// A granted lease is safe from revocation for this long; each renew
    /// while uncontended extends it by the same amount.
    sim::Duration lease_duration{std::chrono::milliseconds{500}};
    /// A waiter that has not re-requested within this window is presumed
    /// gone (its blockage cleared) and no longer ages the holder out.
    /// Must exceed the LinkManager's degraded re-probe interval (100 ms)
    /// so a degraded user retrying at probe cadence stays "live".
    sim::Duration wait_ttl{std::chrono::milliseconds{250}};
    /// After a revocation (or a release with waiters), the reflector is
    /// held for the winning waiter this long; unclaimed reservations
    /// lapse back to free-for-all.
    sim::Duration reserve_ttl{std::chrono::milliseconds{100}};
    /// Priority accumulated per second of waiting.
    double aging_per_second{1.0};
    /// A waiter's aged priority must exceed this before an expired lease
    /// is revoked — hysteresis so a freshly blocked user cannot instantly
    /// evict a holder that still needs the reflector.
    double holder_bonus{0.25};
  };

  struct Stats {
    std::uint64_t grants{0};
    std::uint64_t denials{0};
    std::uint64_t revocations{0};  // expired leases handed to a waiter
    std::uint64_t renewals{0};
    std::uint64_t quarantine_denials{0};  // acquires bounced off a benched
                                          // device (no wait entry aged)
    std::uint64_t fast_tracks{0};         // displaced holders given head-start
    std::uint64_t stale_reservations{0};  // reservations lapsed because the
                                          // reserved waiter's TTL ran out
  };

  struct UserStats {
    std::uint64_t grants{0};
    std::uint64_t denials{0};
    std::uint64_t revocations{0};  // leases taken FROM this user
    std::uint64_t quarantine_denials{0};
  };

  ReflectorArbiter(std::size_t reflectors, std::size_t users, Config config);

  /// Request an exclusive lease on reflector `r` for `user`. Granted when
  /// the reflector is free (or already ours, or reserved for us); denied
  /// otherwise. A denial registers/refreshes the caller's wait entry — the
  /// caller is expected to retry (the LinkManager does, every frame while
  /// blocked), and each retry keeps the entry alive while its first-wait
  /// timestamp keeps aging.
  bool acquire(std::size_t user, std::size_t r, sim::TimePoint now);

  /// Holder keep-alive, called by the coordinator each control tick.
  /// Returns false when the lease has been revoked: the lease had expired
  /// and a live waiter aged past the holder bonus — the reflector is now
  /// reserved for the top waiter and the ex-holder must vacate
  /// (LinkManager::revoke_reflector).
  bool renew(std::size_t user, std::size_t r, sim::TimePoint now);

  /// Voluntary release (recovered to direct, handover failed, quarantine).
  /// With live waiters under kPriorityAging the reflector is reserved for
  /// the top waiter rather than going to whoever asks next.
  void release(std::size_t user, std::size_t r, sim::TimePoint now);

  /// Lease failover support (the coordinator drives these when a shared
  /// device faults). While quarantined a reflector cannot be acquired by
  /// anyone but the current holder — and a quarantine-time failover strips
  /// that holder too — so the device stays un-leased until the coordinator
  /// clears the flag after a successful re-probe. Quarantine denials do
  /// NOT register wait entries: nobody should age priority against a
  /// device that is benched.
  void set_device_quarantined(std::size_t r, bool quarantined);
  bool device_quarantined(std::size_t r) const {
    return table_.at(r).device_quarantined;
  }

  /// Forcibly clear the lease (and any reservation) on `r`; returns the
  /// ex-holder so the coordinator can revoke its LinkManager and fast-track
  /// it. Used for quarantine failover and by the orphan-lease watchdog.
  std::optional<std::size_t> strip_holder(std::size_t r);

  /// Arm a one-shot aging head start: the next wait entry `user` registers
  /// (on any reflector) starts with `first_wait` back-dated by
  /// `head_start`, so a displaced holder re-enters the queue ahead of
  /// priority aging instead of at the back.
  void fast_track(std::size_t user, sim::Duration head_start);

  /// True when `user` has ever interacted with reflector `r` through the
  /// arbiter (grant, denial, wait, strip, or quarantine bounce). The
  /// chaos bench uses this to build fault blast sets.
  bool touched(std::size_t user, std::size_t r) const {
    return touched_.at(r).at(user) != 0;
  }

  std::optional<std::size_t> holder(std::size_t r) const {
    return table_.at(r).holder;
  }
  std::optional<std::size_t> reserved_for(std::size_t r) const {
    return table_.at(r).reserved;
  }

  const Stats& stats() const { return stats_; }
  const UserStats& user_stats(std::size_t user) const {
    return user_stats_.at(user);
  }

 private:
  struct WaitEntry {
    sim::TimePoint first_wait{};
    sim::TimePoint last_request{};
    bool waiting{false};
  };

  struct Entry {
    std::optional<std::size_t> holder;
    sim::TimePoint lease_expiry{};
    std::optional<std::size_t> reserved;
    sim::TimePoint reserve_expiry{};
    bool device_quarantined{false};
    /// One slot per user; `waiting` entries age from first_wait.
    std::vector<WaitEntry> waiters;
  };

  double priority(const WaitEntry& w, sim::TimePoint now) const;
  /// Best live waiter (highest aged priority, ties to the lower user id).
  std::optional<std::size_t> top_waiter(const Entry& entry,
                                        sim::TimePoint now) const;
  void grant(Entry& entry, std::size_t user, sim::TimePoint now);
  void register_wait(Entry& entry, std::size_t user, sim::TimePoint now);
  void mark_touched(std::size_t user, std::size_t r) {
    touched_[r][user] = 1;
  }

  Config config_;
  std::vector<Entry> table_;
  Stats stats_;
  std::vector<UserStats> user_stats_;
  /// touched_[r][u]: user u interacted with reflector r at least once.
  std::vector<std::vector<std::uint8_t>> touched_;
  /// One-shot fast-track credit per user (zero = none armed).
  std::vector<sim::Duration> fast_track_credit_;
};

}  // namespace movr::arena
