// Per-user admission control: admit / degrade / evict with hysteresis.
//
// VR traffic is non-elastic, so an overloaded AP cannot "slow everyone
// down a little" — every user below the required rate glitches every
// frame. The graceful-shedding policy is therefore discrete: when an AP's
// offered airtime exceeds what its attached links can carry, the user with
// the worst airtime economics (offered bitrate / current PHY rate — the
// one burning the most air per delivered bit) is *degraded* (half airtime
// weight + an MCS cap that stops rate-chasing overshoot); if the AP is
// still overloaded after the degrade has had time to bite, that user is
// *evicted* (muted) so the rest of the room recovers. When headroom
// returns, users are readmitted one per window, lowest id first, after a
// backoff — every transition is guarded by dwell counts and distinct
// enter/exit thresholds so utilization noise around a threshold cannot
// flap anyone in and out.
//
// Determinism contract: decisions depend only on the sampled inputs, and a
// single-user AP is never demoted — shedding the only user helps nobody,
// and this rule is what makes a 1-user arena bit-identical to a
// standalone session (DESIGN.md §12.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <sim/time.hpp>

namespace movr::arena {

class AdmissionController {
 public:
  enum class State : std::uint8_t { kAdmitted, kDegraded, kEvicted };

  struct Config {
    /// Fraction of an AP's airtime that is actually schedulable (MAC
    /// overheads, probe slots). Utilization above this = overloaded.
    double capacity_fraction{0.85};
    /// Utilization below this = headroom: readmissions may begin. The gap
    /// to capacity_fraction is the hysteresis band.
    double headroom_fraction{0.60};
    /// Consecutive overloaded windows before a demotion fires, and
    /// consecutive headroom windows before a promotion fires.
    int dwell_windows{3};
    /// MCS index cap applied to degraded users (bounds rate-chasing
    /// overshoot while the room is shedding load).
    int degraded_mcs_cap{12};
    /// An evicted user is not considered for readmission before this.
    sim::Duration readmit_backoff{std::chrono::seconds{2}};
    /// A degraded user cannot be evicted before it has sat degraded this
    /// long: a transient victim (blocked, mid-handover) recovers its PHY
    /// rate and stops being the worst burner, so only persistently bad
    /// airtime economics escalate to eviction.
    sim::Duration evict_grace{std::chrono::milliseconds{750}};
  };

  /// One admission window's worth of observations for one user.
  struct Sample {
    std::size_t ap{0};          // which AP this user is attached to
    double offered_mbps{0.0};   // the stream's target bitrate
    double mcs_rate_mbps{0.0};  // PHY rate the last tick flew (0 = down)
    double miss_fraction{0.0};  // deadline misses / frames, this window
    /// This user's bad airtime economics are fault-induced (its reflector
    /// is quarantined / its AP is browned out), per HealthMonitor state.
    /// Such a user is spared as eviction victim while a non-faulted
    /// alternative exists, and its readmission probation composes with
    /// the fault window (no promotion while still fault-degraded).
    bool fault_degraded{false};
  };

  struct UserCounters {
    int degrades{0};
    int evictions{0};
    int readmissions{0};  // promotions (evicted->degraded->admitted)
    int fault_spares{0};  // times spared as victim for being fault-degraded
  };

  AdmissionController(std::size_t users, std::size_t aps, Config config);

  /// One admission window: ingest every user's sample, update per-AP
  /// utilization, run at most one demotion or promotion per AP.
  void on_window(std::span<const Sample> samples, sim::TimePoint now);

  State state(std::size_t user) const { return state_.at(user); }
  bool transmitting(std::size_t user) const {
    return state_.at(user) != State::kEvicted;
  }
  /// Airtime weight for share computation: 1 admitted, 0.5 degraded,
  /// 0 evicted. Shares are weight / sum-of-weights-on-the-AP.
  double weight(std::size_t user) const;
  /// MCS index cap for the session hook: INT_MAX admitted, the configured
  /// cap degraded, -1 (mute) evicted.
  int mcs_cap(std::size_t user) const;

  const UserCounters& counters(std::size_t user) const {
    return counters_.at(user);
  }
  /// Last computed per-AP airtime utilization (diagnostics / tests).
  double utilization(std::size_t ap) const { return utilization_.at(ap); }

 private:
  /// Offered airtime fraction of one user: offered / usable PHY rate.
  static double airtime_ratio(const Sample& sample);

  Config config_;
  std::vector<State> state_;
  std::vector<UserCounters> counters_;
  std::vector<sim::TimePoint> evicted_at_;
  std::vector<sim::TimePoint> degraded_at_;
  std::vector<int> overload_windows_;  // per AP, consecutive
  std::vector<int> headroom_windows_;  // per AP, consecutive
  std::vector<double> utilization_;    // per AP, last window
};

}  // namespace movr::arena
