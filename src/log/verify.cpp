#include <log/verify.hpp>

#include <algorithm>
#include <cstdio>
#include <map>

#include <log/recorder.hpp>

namespace movr::log {

namespace {

std::string i64_str(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

Issue issue_at(const ParsedRecord& record, std::string what) {
  return {record.seq, record.t_us, std::move(what)};
}

/// Soak-invariant bounds, read from the log's params record.
struct Params {
  std::int64_t grace_us{0};
  std::int64_t osc_us{0};
  std::int64_t div_us{0};
  std::int64_t watchdog_us{0};
  std::int64_t slack_us{0};
  std::int64_t tick_us{0};
  /// Arena lease-liveness bound (invariant F); 0 = not an arena log.
  std::int64_t revoke_grace_us{0};
};

/// Per-reflector watcher state (invariants A/B/C).
struct ReflectorWatch {
  bool unstable{false};
  std::int64_t unstable_since_us{0};
  bool floor_reported{false};
  bool divergence_reported{false};
};

struct SearchWatch {
  std::int64_t launched_us{0};
  std::int64_t launch_seq{0};
  bool done{false};
};

/// Per-reflector lease-liveness state (invariant F): a snapshot_lease
/// stream must never show a lease surviving on a quarantined device past
/// the revocation grace.
struct LeaseWatch {
  bool held_quarantined{false};
  std::int64_t since_us{0};
  bool reported{false};
};

/// One event rendered for the diff: kind plus payload, no seq/time/hash.
std::string diff_key(const ParsedRecord& record) {
  std::string out{record.kind_name};
  for (const ParsedField& f : record.fields) {
    out += ' ';
    out += f.key;
    out += '=';
    out += i64_str(f.value);
  }
  return out;
}

bool diff_relevant(const ParsedRecord& record) {
  if (record.kind_name.rfind("snapshot_", 0) == 0) {
    return false;  // per-tick counters differ whenever timing does
  }
  return record.kind_name != "coord_tick" && record.kind_name != "log_close";
}

}  // namespace

VerifyReport verify_log(const ParsedLog& log, std::string_view key) {
  VerifyReport report;
  report.records = log.records.size();

  // --- pass 1: grammar + chain, fail-fast at the first bad record -------
  if (!log.ok()) {
    report.chain_issues.push_back({-1, 0, "parse error: " + log.error});
    return report;
  }
  if (log.records.empty()) {
    report.chain_issues.push_back({-1, 0, "empty log"});
    return report;
  }
  std::uint64_t chain = chain_seed(key);
  for (std::size_t i = 0; i < log.records.size(); ++i) {
    const ParsedRecord& record = log.records[i];
    if (record.seq != static_cast<std::int64_t>(i)) {
      report.chain_issues.push_back(issue_at(
          record, "sequence break: expected seq " + i64_str(
                      static_cast<std::int64_t>(i)) +
                      ", found seq " + i64_str(record.seq) +
                      " (record dropped or reordered)"));
      return report;
    }
    chain = chain_next(chain, record.canonical, key);
    if (chain != record.hash) {
      report.chain_issues.push_back(issue_at(
          record,
          "chain hash mismatch (record tampered, or wrong signing key)"));
      return report;
    }
  }
  const ParsedRecord& first = log.records.front();
  if (!first.is(EventKind::kLogOpen)) {
    report.chain_issues.push_back(
        issue_at(first, "first record is not log_open"));
    return report;
  }
  if (first.field("version") > kFormatVersion) {
    report.chain_issues.push_back(issue_at(
        first, "log format version " + i64_str(first.field("version")) +
                   " is newer than this verifier (" +
                   i64_str(kFormatVersion) + ")"));
    return report;
  }
  if (!log.records.back().is(EventKind::kLogClose)) {
    report.chain_issues.push_back(
        issue_at(log.records.back(),
                 "truncated: last record is not log_close"));
    return report;
  }

  // --- pass 2: invariants replayed from the records ---------------------
  Params params;
  bool partitioned = false;
  std::int64_t partition_since_us = 0;
  std::vector<ReflectorWatch> reflectors;
  std::vector<LeaseWatch> leases;
  std::map<std::int64_t, SearchWatch> searches;
  bool risk_open = false;
  bool spec_armed = false;
  const auto violate = [&](const ParsedRecord& record, std::string what) {
    report.invariant_issues.push_back(issue_at(record, std::move(what)));
  };

  for (const ParsedRecord& record : log.records) {
    if (!record.kind.has_value()) {
      continue;  // forward compatibility: unknown kinds are opaque
    }
    switch (*record.kind) {
      case EventKind::kParams: {
        params.grace_us = record.field("grace_us");
        params.osc_us = record.field("osc_us");
        params.div_us = record.field("div_us");
        params.watchdog_us = record.field("watchdog_us");
        params.slack_us = record.field("slack_us");
        params.tick_us = record.field("tick_us");
        params.revoke_grace_us = record.field("revoke_grace_us");
        report.has_params = true;
        reflectors.resize(
            static_cast<std::size_t>(std::max<std::int64_t>(
                record.field("reflectors"), 0)));
        break;
      }
      case EventKind::kSnapshotControl: {
        ++report.control_snapshots;
        // D: the control-channel ledger closes on every tick.
        const std::int64_t sent = record.field("sent");
        const std::int64_t closed = record.field("delivered") +
                                    record.field("dropped") +
                                    record.field("undeliv") +
                                    record.field("in_flight");
        if (sent != closed) {
          violate(record, "invariant D: control ledger open (sent " +
                              i64_str(sent) + " != closed " +
                              i64_str(closed) + ")");
        }
        // A's clock: partition episodes are tracked from the control flag.
        if (record.field("part") != 0) {
          if (!partitioned) {
            partitioned = true;
            partition_since_us = record.t_us;
          }
        } else {
          partitioned = false;
          for (ReflectorWatch& w : reflectors) {
            w.floor_reported = false;
          }
        }
        break;
      }
      case EventKind::kSnapshotReflector: {
        ++report.reflector_snapshots;
        const auto r = static_cast<std::size_t>(
            std::max<std::int64_t>(record.field("r"), 0));
        if (r >= reflectors.size()) {
          reflectors.resize(r + 1);
        }
        ReflectorWatch& w = reflectors[r];
        if (!report.has_params) {
          break;  // no bounds: chain + ledger checks only
        }
        // A: partition outlasting the grace => gain at/below the floor.
        if (partitioned &&
            record.t_us - partition_since_us > params.grace_us &&
            record.field("gain") > record.field("safe_code") &&
            !w.floor_reported) {
          w.floor_reported = true;
          violate(record,
                  "invariant A: reflector " + i64_str(record.field("r")) +
                      " gain code " + i64_str(record.field("gain")) +
                      " above safe floor " +
                      i64_str(record.field("safe_code")) +
                      " during a partition older than the grace bound");
        }
        // B: instability must not be sustained.
        if (record.field("stable") == 0) {
          if (!w.unstable) {
            w.unstable = true;
            w.unstable_since_us = record.t_us;
          }
          if (record.t_us - w.unstable_since_us > params.osc_us) {
            violate(record,
                    "invariant B: reflector " + i64_str(record.field("r")) +
                        " oscillating for more than " +
                        i64_str(params.osc_us) + " us");
            w.unstable_since_us = record.t_us;  // rate-limit, like the soak
          }
        } else {
          w.unstable = false;
        }
        // C: divergence reconciled within the bound (partitioned excluded).
        if (record.field("plane_part") == 0 &&
            record.field("div_age_us") > params.div_us) {
          if (!w.divergence_reported) {
            w.divergence_reported = true;
            violate(record,
                    "invariant C: reflector " + i64_str(record.field("r")) +
                        " divergence age " +
                        i64_str(record.field("div_age_us")) +
                        " us over the reconciliation bound " +
                        i64_str(params.div_us) + " us");
          }
        } else if (record.field("div_age_us") == 0) {
          w.divergence_reported = false;
        }
        break;
      }
      case EventKind::kSnapshotTransport: {
        ++report.transport_snapshots;
        // D: the transport packet ledger closes.
        const std::int64_t enq = record.field("enqueued");
        const std::int64_t closed =
            record.field("delivered") + record.field("dropped") +
            record.field("recovered") + record.field("spec_dup") +
            record.field("in_flight");
        if (enq != closed) {
          violate(record, "invariant D: transport ledger open (enqueued " +
                              i64_str(enq) + " != closed " + i64_str(closed) +
                              ")");
        }
        break;
      }
      case EventKind::kSearchLaunch: {
        ++report.searches;
        SearchWatch watch;
        watch.launched_us = record.t_us;
        watch.launch_seq = record.seq;
        searches[record.field("id")] = watch;
        break;
      }
      case EventKind::kSearchDone: {
        auto it = searches.find(record.field("id"));
        if (it == searches.end()) {
          violate(record, "invariant E: search_done for search " +
                              i64_str(record.field("id")) +
                              " that never launched");
          break;
        }
        it->second.done = true;
        if (report.has_params) {
          const std::int64_t bound =
              params.watchdog_us + params.slack_us + params.tick_us;
          const std::int64_t took = record.t_us - it->second.launched_us;
          if (took > bound) {
            violate(record, "invariant E: search " +
                                i64_str(record.field("id")) + " took " +
                                i64_str(took) + " us, past its watchdog (" +
                                i64_str(bound) + " us)");
          }
        }
        if (record.field("completed") == 0 &&
            record.field("reason_h") == 0) {
          violate(record, "invariant E: search " +
                              i64_str(record.field("id")) +
                              " failed without a reason");
        }
        break;
      }
      case EventKind::kSnapshotLease: {
        ++report.lease_snapshots;
        if (!report.has_params || params.revoke_grace_us <= 0) {
          break;  // not an arena-coordinator log: no liveness bound
        }
        const auto r = static_cast<std::size_t>(
            std::max<std::int64_t>(record.field("r"), 0));
        if (r >= leases.size()) {
          leases.resize(r + 1);
        }
        LeaseWatch& w = leases[r];
        // F: a quarantined device must shed its lease within the
        // revocation grace — a holder surviving past it means failover
        // never ran (or the watchdog lost the orphan).
        const bool held_quarantined =
            record.field("quar") != 0 && record.field("holder") >= 0;
        if (held_quarantined) {
          if (!w.held_quarantined) {
            w.held_quarantined = true;
            w.since_us = record.t_us;
          }
          if (record.t_us - w.since_us > params.revoke_grace_us &&
              !w.reported) {
            w.reported = true;
            violate(record,
                    "invariant F: reflector " + i64_str(record.field("r")) +
                        " still leased to user " +
                        i64_str(record.field("holder")) +
                        " while quarantined for " +
                        i64_str(record.t_us - w.since_us) +
                        " us, past the revocation grace (" +
                        i64_str(params.revoke_grace_us) + " us)");
          }
        } else {
          w.held_quarantined = false;
          w.reported = false;
        }
        break;
      }
      case EventKind::kRiskWindowOpen: {
        ++report.risk_windows;
        // G: the predictive tier's decisions must pair up — merged risk
        // windows open once and close once.
        if (risk_open) {
          violate(record,
                  "invariant G: risk window opened while one is open");
        }
        risk_open = true;
        break;
      }
      case EventKind::kRiskWindowClose: {
        if (!risk_open) {
          violate(record, "invariant G: risk window closed that never "
                          "opened");
        }
        if (spec_armed) {
          violate(record, "invariant G: speculation still armed at risk "
                          "window close");
        }
        risk_open = false;
        break;
      }
      case EventKind::kSpecArm: {
        ++report.spec_arms;
        if (spec_armed) {
          violate(record, "invariant G: speculative probing armed twice");
        }
        if (!risk_open) {
          violate(record, "invariant G: speculative probing armed outside "
                          "a risk window");
        }
        spec_armed = true;
        break;
      }
      case EventKind::kSpecDisarm: {
        if (!spec_armed) {
          violate(record,
                  "invariant G: speculative probing disarmed while unarmed");
        }
        spec_armed = false;
        break;
      }
      case EventKind::kLogClose: {
        // A risk window (or armed speculation) still open here is fine:
        // the session ended mid-window and the recorder sealed the log.
        for (const auto& [id, watch] : searches) {
          if (!watch.done) {
            violate(record, "invariant E: search " + i64_str(id) +
                                " (launched seq " +
                                i64_str(watch.launch_seq) +
                                ") never terminated");
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return report;
}

std::vector<std::string> diff_logs(const ParsedLog& a, const ParsedLog& b) {
  std::vector<std::string> out;
  if (!a.ok()) {
    out.push_back("log A unparseable: " + a.error);
  }
  if (!b.ok()) {
    out.push_back("log B unparseable: " + b.error);
  }
  if (!out.empty()) {
    return out;
  }

  std::vector<const ParsedRecord*> ea;
  std::vector<const ParsedRecord*> eb;
  for (const ParsedRecord& r : a.records) {
    if (diff_relevant(r)) {
      ea.push_back(&r);
    }
  }
  for (const ParsedRecord& r : b.records) {
    if (diff_relevant(r)) {
      eb.push_back(&r);
    }
  }

  constexpr std::size_t kMaxListed = 10;
  const std::size_t common = std::min(ea.size(), eb.size());
  std::size_t listed = 0;
  for (std::size_t i = 0; i < common && listed < kMaxListed; ++i) {
    const std::string ka = diff_key(*ea[i]);
    const std::string kb = diff_key(*eb[i]);
    if (ka != kb) {
      out.push_back("event " + i64_str(static_cast<std::int64_t>(i)) +
                    ": A{" + ka + "} vs B{" + kb + "}");
      ++listed;
    }
  }
  if (ea.size() != eb.size()) {
    out.push_back("event counts differ: A has " +
                  i64_str(static_cast<std::int64_t>(ea.size())) +
                  " events, B has " +
                  i64_str(static_cast<std::int64_t>(eb.size())));
  }

  // Per-kind count deltas give the forensic headline.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> kinds;
  for (const ParsedRecord* r : ea) {
    ++kinds[r->kind_name].first;
  }
  for (const ParsedRecord* r : eb) {
    ++kinds[r->kind_name].second;
  }
  for (const auto& [kind, counts] : kinds) {
    if (counts.first != counts.second) {
      out.push_back("kind " + kind + ": A " + i64_str(counts.first) +
                    " vs B " + i64_str(counts.second));
    }
  }
  return out;
}

}  // namespace movr::log
