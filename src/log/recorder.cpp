#include <log/recorder.hpp>

#include <cinttypes>
#include <cstdio>

#include <sim/rng.hpp>

namespace movr::log {

namespace {

constexpr std::string_view kChainTag = "movr-log-v1";

std::uint64_t fnv1a_bytes(std::string_view bytes, std::uint64_t hash) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

void append_hex16(std::string& out, std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  out += buf;
}

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  out += buf;
}

}  // namespace

std::uint64_t chain_seed(std::string_view key) {
  return fnv1a_bytes(key, fnv1a_bytes(kChainTag, kFnvOffset));
}

std::uint64_t chain_next(std::uint64_t prev, std::string_view canonical,
                         std::string_view key) {
  char prev_hex[17];
  std::snprintf(prev_hex, sizeof prev_hex, "%016" PRIx64, prev);
  std::uint64_t link = fnv1a_bytes({prev_hex, 16}, kFnvOffset);
  link = fnv1a_bytes("|", link);
  link = fnv1a_bytes(canonical, link);
  link = fnv1a_bytes(key, link);
  return link;
}

std::int64_t Recorder::name_hash(std::string_view name) {
  return static_cast<std::int64_t>(sim::fnv1a(name) & 0x7fffffffffffffffull);
}

Recorder::Recorder(Config config) : config_{std::move(config)} {
  chain_ = chain_seed(config_.key);
  buffer_.reserve(1 << 16);
  record_at(sim::TimePoint{}, EventKind::kLogOpen,
            {{"version", kFormatVersion},
             {"bench", name_hash(config_.bench)},
             {"seed", static_cast<std::int64_t>(config_.seed)},
             {"signed", config_.key.empty() ? 0 : 1}});
}

Recorder::~Recorder() { close(); }

void Recorder::record(EventKind kind,
                      std::initializer_list<EventField> fields) {
  append(clock_ != nullptr ? clock_->now() : sim::TimePoint{}, kind, fields);
}

void Recorder::record_at(sim::TimePoint at, EventKind kind,
                         std::initializer_list<EventField> fields) {
  append(at, kind, fields);
}

void Recorder::append(sim::TimePoint at, EventKind kind,
                      std::initializer_list<EventField> fields) {
  if (closed_) {
    return;  // a straggler event after close(): the contract is append-only
  }
  scratch_.clear();
  scratch_ += "t=";
  append_i64(scratch_, at.count() / 1000);  // microseconds
  scratch_ += " q=";
  append_i64(scratch_, static_cast<std::int64_t>(seq_));
  scratch_ += " k=";
  scratch_ += to_string(kind);
  for (const EventField& field : fields) {
    scratch_ += ' ';
    scratch_ += field.key;
    scratch_ += '=';
    append_i64(scratch_, field.value);
  }

  chain_ = chain_next(chain_, scratch_, config_.key);

  buffer_ += scratch_;
  buffer_ += " h=";
  append_hex16(buffer_, chain_);
  buffer_ += '\n';
  ++seq_;
}

void Recorder::close() {
  if (closed_) {
    return;
  }
  append(clock_ != nullptr ? clock_->now() : sim::TimePoint{},
         EventKind::kLogClose,
         {{"records", static_cast<std::int64_t>(seq_)}});
  closed_ = true;
  if (config_.path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(config_.path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "log::Recorder: cannot open %s\n",
                 config_.path.c_str());
    return;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
}

}  // namespace movr::log
