// Offline verification of session event logs: chain integrity first,
// then the chaos-soak and arena safety invariants replayed from the
// records alone — zero simulator re-execution.
//
// The chain pass is strict and fail-fast: the first record whose seq does
// not advance by exactly one (a drop or a reorder), or whose chain hash
// does not recompute (an edit), names itself and stops the pass — exactly
// the "detectable at the first bad record" property the recorder's chain
// rule promises. A log whose last record is not log_close is truncated.
//
// The invariant pass mirrors bench/chaos_soak's 20 ms watcher machine,
// driven by the per-tick snapshot records instead of live objects:
//
//   A  snapshot_control carries the partition flag; once a partition's age
//      exceeds the grace bound, every snapshot_reflector must show
//      gain <= safe_code.
//   B  a reflector's `stable` flag may drop, but not for longer than the
//      oscillation bound.
//   C  any snapshot_reflector with plane_part=0 and div_age_us over the
//      divergence bound is an unreconciled divergence.
//   D  every snapshot_control ledger must close (sent == delivered +
//      dropped + undeliv + in_flight); every snapshot_transport must close
//      (enqueued == delivered + dropped + recovered + spec_dup +
//      in_flight).
//   E  every search_launch pairs with a search_done inside the watchdog
//      budget (+ one tick of offline quantisation grace), failures carry a
//      reason, and nothing is left running at log_close.
//   F  lease liveness (arena-coordinator logs, i.e. params carries
//      revoke_grace_us): no snapshot_lease may show a lease held on a
//      quarantined reflector beyond the revocation grace — the proof
//      that lease failover actually ran, from the bytes alone.
//   G  predictive-tier pairing: risk windows open/close alternately and
//      speculative arming only happens inside an open risk window (a
//      window or armed probe cut off by log_close is tolerated).
//
// Bounds come from the log's own params record, so logs are
// self-describing; logs without params (e.g. arena per-user streams) get
// the chain + ledger-closure + pairing checks only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <log/reader.hpp>

namespace movr::log {

struct Issue {
  std::int64_t seq{-1};
  std::int64_t t_us{0};
  std::string what;
};

struct VerifyReport {
  /// Chain/grammar/truncation problems; fail-fast, so at most one entry
  /// plus a possible truncation note.
  std::vector<Issue> chain_issues;
  /// Invariant violations replayed from the records (chain must be clean).
  std::vector<Issue> invariant_issues;
  std::size_t records{0};
  std::uint64_t control_snapshots{0};
  std::uint64_t reflector_snapshots{0};
  std::uint64_t transport_snapshots{0};
  std::uint64_t searches{0};
  std::uint64_t lease_snapshots{0};
  std::uint64_t risk_windows{0};
  std::uint64_t spec_arms{0};
  bool has_params{false};
  bool ok() const { return chain_issues.empty() && invariant_issues.empty(); }
};

/// Full verification: chain pass, then (if the chain held) the invariant
/// pass. `key` must match the recording key, or the chain breaks at seq 0.
VerifyReport verify_log(const ParsedLog& log, std::string_view key);

/// Event-stream diff for regression forensics: compares the two logs'
/// non-snapshot event sequences (kind + payload, ignoring seq/time/hash)
/// and returns human-readable differences — empty means the streams agree.
std::vector<std::string> diff_logs(const ParsedLog& a, const ParsedLog& b);

}  // namespace movr::log
