#include <log/reader.hpp>

#include <array>
#include <cstdio>

namespace movr::log {

namespace {

/// All kinds this build knows, for name -> enum resolution.
constexpr std::array<EventKind, 42> kAllKinds = {
    EventKind::kLogOpen,           EventKind::kParams,
    EventKind::kHandoverBegin,     EventKind::kHandoverCommit,
    EventKind::kHandoverAbort,     EventKind::kRecoverDirect,
    EventKind::kDegradedEnter,     EventKind::kLeaseAcquire,
    EventKind::kLeaseDeny,         EventKind::kLeaseRelease,
    EventKind::kLeaseRevoke,       EventKind::kFaultOpen,
    EventKind::kFaultClose,        EventKind::kEpochStage,
    EventKind::kEpochCommit,       EventKind::kEpochAck,
    EventKind::kPartitionEnter,    EventKind::kPartitionHeal,
    EventKind::kDivergence,        EventKind::kReconcile,
    EventKind::kSafeModeEnter,     EventKind::kSafeModeExit,
    EventKind::kHealthQuarantine,  EventKind::kHealthReprobe,
    EventKind::kHealthRestore,     EventKind::kAdmissionDegrade,
    EventKind::kAdmissionEvict,    EventKind::kAdmissionReadmit,
    EventKind::kSearchLaunch,      EventKind::kSearchDone,
    EventKind::kSnapshotControl,   EventKind::kSnapshotTransport,
    EventKind::kSnapshotReflector, EventKind::kCoordTick,
    EventKind::kArenaFaultOpen,    EventKind::kArenaFaultClose,
    EventKind::kSnapshotLease,     EventKind::kRiskWindowOpen,
    EventKind::kRiskWindowClose,   EventKind::kSpecArm,
    EventKind::kSpecDisarm,        EventKind::kLogClose,
};

std::optional<EventKind> kind_from_name(std::string_view name) {
  for (const EventKind k : kAllKinds) {
    if (to_string(k) == name) {
      return k;
    }
  }
  return std::nullopt;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  if (text.empty()) {
    return false;
  }
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) {
      return false;
    }
  }
  std::uint64_t magnitude = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return false;
    }
    magnitude = magnitude * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

bool parse_hex16(std::string_view text, std::uint64_t& out) {
  if (text.size() != 16) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  out = value;
  return true;
}

/// Splits `line` into whitespace-free key=value tokens.
bool next_token(std::string_view& rest, std::string_view& key,
                std::string_view& value) {
  while (!rest.empty() && rest.front() == ' ') {
    rest.remove_prefix(1);
  }
  if (rest.empty()) {
    return false;
  }
  const std::size_t end = rest.find(' ');
  const std::string_view token =
      rest.substr(0, end == std::string_view::npos ? rest.size() : end);
  rest.remove_prefix(token.size());
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= token.size()) {
    key = token;
    value = {};
    return true;  // caller rejects: every token must be key=value
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

std::string line_error(std::size_t line, const char* what) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "line %zu: %s", line, what);
  return buf;
}

}  // namespace

std::int64_t ParsedRecord::field(std::string_view key,
                                 std::int64_t fallback) const {
  for (const ParsedField& f : fields) {
    if (f.key == key) {
      return f.value;
    }
  }
  return fallback;
}

bool ParsedRecord::has_field(std::string_view key) const {
  for (const ParsedField& f : fields) {
    if (f.key == key) {
      return true;
    }
  }
  return false;
}

ParsedLog parse_log(std::string_view text) {
  ParsedLog log;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line =
        text.substr(0, nl == std::string_view::npos ? text.size() : nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (line.empty()) {
      if (text.empty()) {
        break;  // trailing newline
      }
      log.error = line_error(line_no, "empty record line");
      return log;
    }

    ParsedRecord record;
    record.line = line_no;

    // The chain hash must be the final token.
    const std::size_t hpos = line.rfind(" h=");
    if (hpos == std::string_view::npos ||
        !parse_hex16(line.substr(hpos + 3), record.hash)) {
      log.error = line_error(line_no, "missing or malformed h= chain hash");
      return log;
    }
    record.canonical = std::string{line.substr(0, hpos)};

    std::string_view rest{record.canonical};
    std::string_view key;
    std::string_view value;
    int position = 0;
    bool bad = false;
    while (next_token(rest, key, value)) {
      if (value.empty()) {
        bad = true;
        break;
      }
      ++position;
      if (position == 1) {
        bad = key != "t" || !parse_i64(value, record.t_us);
      } else if (position == 2) {
        bad = key != "q" || !parse_i64(value, record.seq);
      } else if (position == 3) {
        bad = key != "k";
        record.kind_name = std::string{value};
        record.kind = kind_from_name(value);
      } else {
        ParsedField field;
        field.key = std::string{key};
        bad = !parse_i64(value, field.value);
        record.fields.push_back(std::move(field));
      }
      if (bad) {
        break;
      }
    }
    if (bad || position < 3) {
      log.error = line_error(line_no, "malformed record (want t= q= k= ...)");
      return log;
    }
    log.records.push_back(std::move(record));
  }
  return log;
}

ParsedLog parse_log_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ParsedLog log;
    log.error = "cannot open " + path;
    return log;
  }
  std::string text;
  char chunk[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(f);
  return parse_log(text);
}

}  // namespace movr::log
