// The session event contract: a fixed, versioned record vocabulary.
//
// Every record in a session event log is one line of the form
//
//   t=<session_time_us> q=<seq> k=<kind> <key>=<int64>... h=<16-hex-chain>
//
// and every payload value is a signed 64-bit integer — times in
// microseconds, gains as DAC codes, decibels in milli-dB — so a log is
// byte-stable across identical runs: no float formatting, no locale, no
// pointer values. The chain hash over each record (recorder.hpp) makes
// truncation, reordering and tampering detectable at the first bad record,
// and the offline verifier (verify.hpp) re-checks the chaos-soak safety
// invariants from these records alone, with zero simulator re-execution.
//
// Versioning policy: kFormatVersion bumps on ANY change to the line
// grammar, the canonicalisation the chain hashes, or the meaning of an
// existing kind/field. Adding a new kind or a new optional field is
// backward compatible and does NOT bump the version — the verifier treats
// unknown kinds as opaque (chain-checked, invariant-neutral).
#pragma once

#include <cstdint>
#include <string_view>

namespace movr::log {

/// Grammar version written into every log_open record.
inline constexpr std::int64_t kFormatVersion = 1;

/// The record vocabulary. Order is part of the contract only insofar as
/// names are — records serialize by name, never by ordinal.
enum class EventKind : std::uint8_t {
  kLogOpen,           // first record: version, bench, seed
  kParams,            // invariant parameters (self-describing logs)
  kHandoverBegin,     // manager started a handover to a reflector
  kHandoverCommit,    // handover committed: link rides the reflector
  kHandoverAbort,     // handover failed/abandoned (reason code)
  kRecoverDirect,     // link switched back to the direct beam
  kDegradedEnter,     // nothing usable: best-effort direct
  kLeaseAcquire,      // multi-user: reflector lease granted
  kLeaseDeny,         // multi-user: lease denied (busy, not faulty)
  kLeaseRelease,      // lease returned to the pool
  kLeaseRevoke,       // arbiter revoked the lease out from under us
  kFaultOpen,         // injected fault window opened
  kFaultClose,        // injected fault window closed
  kEpochStage,        // control plane staged an epoch's fields + commit
  kEpochCommit,       // a fresh epoch was committed (AP intent)
  kEpochAck,          // reflector acked (applied_seq, boot_epoch)
  kPartitionEnter,    // control plane declared a reflector unreachable
  kPartitionHeal,     // reflector reachable again
  kDivergence,        // digest mismatch opened a divergence episode
  kReconcile,         // epoch replay issued
  kSafeModeEnter,     // reflector autonomously clamped to the safe floor
  kSafeModeExit,      // AP re-asserted the registers
  kHealthQuarantine,  // reflector benched
  kHealthReprobe,     // quarantine re-probe outcome (good=0 failed)
  kHealthRestore,     // re-probe succeeded: healthy again
  kAdmissionDegrade,  // arena: user degraded (half weight + MCS cap)
  kAdmissionEvict,    // arena: user evicted (muted)
  kAdmissionReadmit,  // arena: user promoted back
  kSearchLaunch,      // angle search launched into the chaos
  kSearchDone,        // angle search terminated (completed or reasoned)
  kSnapshotControl,   // per-20 ms control-channel ledger counters
  kSnapshotTransport, // per-20 ms transport packet-ledger counters
  kSnapshotReflector, // per-20 ms reflector safety state
  kCoordTick,         // arena coordinator interleave marker
  kArenaFaultOpen,    // shared-resource fault window opened (coordinator)
  kArenaFaultClose,   // shared-resource fault window closed
  kSnapshotLease,     // per-control-tick arbiter lease/quarantine state
  kRiskWindowOpen,    // forecaster risk window accepted by the manager
  kRiskWindowClose,   // risk window ran out (merged windows close once)
  kSpecArm,           // speculative alt-path probing armed
  kSpecDisarm,        // speculative probing dropped (no alt, or window end)
  kLogClose,          // last record: summary counters; absence = truncation
};

/// One payload field: a short stable key and a signed 64-bit value.
struct EventField {
  std::string_view key;
  std::int64_t value{0};
};

/// Handover-abort reason codes (kHandoverAbort `reason`).
enum : std::int64_t {
  kAbortUnreachable = 1,  // control link unreachable at commit
  kAbortTimeout = 2,      // commit never landed inside handover_timeout
  kAbortLowSnr = 3,       // via-link below usable SNR at commit
  kAbortReboot = 4,       // target answered as a newborn (wiped registers)
};

constexpr std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kLogOpen: return "log_open";
    case EventKind::kParams: return "params";
    case EventKind::kHandoverBegin: return "handover_begin";
    case EventKind::kHandoverCommit: return "handover_commit";
    case EventKind::kHandoverAbort: return "handover_abort";
    case EventKind::kRecoverDirect: return "recover_direct";
    case EventKind::kDegradedEnter: return "degraded_enter";
    case EventKind::kLeaseAcquire: return "lease_acquire";
    case EventKind::kLeaseDeny: return "lease_deny";
    case EventKind::kLeaseRelease: return "lease_release";
    case EventKind::kLeaseRevoke: return "lease_revoke";
    case EventKind::kFaultOpen: return "fault_open";
    case EventKind::kFaultClose: return "fault_close";
    case EventKind::kEpochStage: return "epoch_stage";
    case EventKind::kEpochCommit: return "epoch_commit";
    case EventKind::kEpochAck: return "epoch_ack";
    case EventKind::kPartitionEnter: return "partition_enter";
    case EventKind::kPartitionHeal: return "partition_heal";
    case EventKind::kDivergence: return "divergence";
    case EventKind::kReconcile: return "reconcile";
    case EventKind::kSafeModeEnter: return "safe_mode_enter";
    case EventKind::kSafeModeExit: return "safe_mode_exit";
    case EventKind::kHealthQuarantine: return "health_quarantine";
    case EventKind::kHealthReprobe: return "health_reprobe";
    case EventKind::kHealthRestore: return "health_restore";
    case EventKind::kAdmissionDegrade: return "admission_degrade";
    case EventKind::kAdmissionEvict: return "admission_evict";
    case EventKind::kAdmissionReadmit: return "admission_readmit";
    case EventKind::kSearchLaunch: return "search_launch";
    case EventKind::kSearchDone: return "search_done";
    case EventKind::kSnapshotControl: return "snapshot_control";
    case EventKind::kSnapshotTransport: return "snapshot_transport";
    case EventKind::kSnapshotReflector: return "snapshot_reflector";
    case EventKind::kCoordTick: return "coord_tick";
    case EventKind::kArenaFaultOpen: return "arena_fault_open";
    case EventKind::kArenaFaultClose: return "arena_fault_close";
    case EventKind::kSnapshotLease: return "snapshot_lease";
    case EventKind::kRiskWindowOpen: return "risk_window_open";
    case EventKind::kRiskWindowClose: return "risk_window_close";
    case EventKind::kSpecArm: return "spec_arm";
    case EventKind::kSpecDisarm: return "spec_disarm";
    case EventKind::kLogClose: return "log_close";
  }
  return "unknown";
}

}  // namespace movr::log
