// Parser for session event logs: text lines back into records.
//
// The reader is deliberately forgiving about *content* (unknown kinds and
// unknown fields parse fine — the contract allows forward-compatible
// additions) and strict about *grammar*: every line must match
//
//   t=<int64> q=<int64> k=<name> [<key>=<int64>...] h=<16 hex>
//
// Grammar errors surface as a ParseError naming the line, so the verifier
// can report malformed logs with the same first-bad-record precision it
// reports chain breaks with.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <log/event.hpp>

namespace movr::log {

/// One parsed payload field (owning — the source text may be gone).
struct ParsedField {
  std::string key;
  std::int64_t value{0};
};

/// One parsed record.
struct ParsedRecord {
  std::int64_t t_us{0};
  std::int64_t seq{0};
  /// Kind name as written; `kind` is nullopt for kinds this build does
  /// not know (forward compatibility — chain-checked, invariant-neutral).
  std::string kind_name;
  std::optional<EventKind> kind;
  std::vector<ParsedField> fields;
  /// The chain hash the record carries.
  std::uint64_t hash{0};
  /// The line without its trailing " h=..." — the chain's hash input.
  std::string canonical;
  /// 1-based source line number.
  std::size_t line{0};

  bool is(EventKind k) const { return kind.has_value() && *kind == k; }
  /// Field lookup; `fallback` when absent.
  std::int64_t field(std::string_view key, std::int64_t fallback = 0) const;
  bool has_field(std::string_view key) const;
};

struct ParsedLog {
  std::vector<ParsedRecord> records;
  /// Empty when the whole file parsed; otherwise "line N: why".
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parses a whole log text (the file's bytes).
ParsedLog parse_log(std::string_view text);

/// Reads and parses a log file; error is set on open failure too.
ParsedLog parse_log_file(const std::string& path);

}  // namespace movr::log
