// Append-only, hash-chained session event recorder.
//
// The recorder is the single sink every instrumented subsystem writes
// through. The hooks are null-checked pointers — a session with no
// recorder attached pays one branch per emission site and nothing else —
// and recording never consumes any session RNG stream, so a logged run is
// bit-identical to an unlogged one (the acceptance criterion the round-
// trip tests pin).
//
// Chain rule: with H = FNV-1a over bytes,
//
//   h_0 = H(tag || key)            tag = "movr-log-v<version>"
//   h_i = H(hex16(h_{i-1}) || "|" || canonical(record_i) || key)
//
// where canonical(record) is the record's line WITHOUT its trailing
// " h=..." field. An empty key gives a plain integrity chain; a non-empty
// session key folds into every link, HMAC-style, so a log can only be
// re-chained by a holder of the key. Either way, truncating the log (the
// log_close record is missing), dropping or reordering records (the seq
// must advance by exactly one), or editing any byte breaks the chain at
// the first bad record.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include <log/event.hpp>
#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::log {

/// h_0: the chain anchor for a log signed with `key` (may be empty).
std::uint64_t chain_seed(std::string_view key);
/// h_i from h_{i-1} and the record's canonical line (no " h=" field).
std::uint64_t chain_next(std::uint64_t prev, std::string_view canonical,
                         std::string_view key);

class Recorder {
 public:
  struct Config {
    /// File the log is written to at close(); empty = in-memory only.
    std::string path;
    /// Optional session signing key, folded into every chain link.
    std::string key;
    /// Emitting bench/tool name, written into the log_open record (as a
    /// 63-bit FNV-1a hash — payloads are integers only).
    std::string bench;
    std::uint64_t seed{0};
  };

  explicit Recorder(Config config);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
  ~Recorder();

  /// Default time source for record(): the simulator's clock. Hooks in
  /// sim-free subsystems (HealthMonitor) use record_at instead.
  void bind_clock(const sim::Simulator* simulator) { clock_ = simulator; }

  /// Appends one record stamped with the bound clock (t=0 when unbound).
  void record(EventKind kind, std::initializer_list<EventField> fields);
  /// Appends one record at an explicit time.
  void record_at(sim::TimePoint at, EventKind kind,
                 std::initializer_list<EventField> fields);

  /// Appends the log_close record (summary counters) and, when a path is
  /// configured, writes the whole log in one shot — a byte-stable file.
  /// Idempotent; the destructor calls it as a safety net.
  void close();

  bool closed() const { return closed_; }
  std::uint64_t records() const { return seq_; }
  std::uint64_t chain() const { return chain_; }
  /// The full log text so far (tests verify from the buffer directly).
  const std::string& buffer() const { return buffer_; }

  /// FNV-1a folded to 63 bits: string identities (bench names, fault
  /// names) as non-negative int64 payload values.
  static std::int64_t name_hash(std::string_view name);

 private:
  void append(sim::TimePoint at, EventKind kind,
              std::initializer_list<EventField> fields);

  Config config_;
  const sim::Simulator* clock_{nullptr};
  std::string buffer_;
  std::string scratch_;  // canonical line under construction, reused
  std::uint64_t chain_{0};
  std::uint64_t seq_{0};
  bool closed_{false};
};

}  // namespace movr::log
