// Line segments: walls, and the straight legs of propagation paths.
#pragma once

#include <optional>

#include <geom/vec2.hpp>

namespace movr::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Vec2 direction() const { return b - a; }
  double length() const { return (b - a).norm(); }
  constexpr Vec2 midpoint() const { return (a + b) * 0.5; }

  /// Point at parameter t in [0, 1] along the segment.
  constexpr Vec2 at(double t) const { return a + (b - a) * t; }
};

/// Proper intersection of two segments (shared endpoints count as hits).
/// Returns the intersection point, or nullopt if they do not cross.
/// Collinear overlapping segments return nullopt: walls in our rooms are
/// axis-aligned and never collinear with propagation legs in practice, and
/// a grazing ray carries no blockage semantics.
std::optional<Vec2> intersect(const Segment& s1, const Segment& s2);

/// Euclidean distance from a point to the closest point on the segment.
double distance_to(const Segment& s, Vec2 p);

/// Mirror image of point `p` across the infinite line through `s`.
/// This is the image-source transform used by the specular ray tracer.
Vec2 mirror_across(const Segment& s, Vec2 p);

/// True if `p` lies within `tolerance` of the segment.
bool contains(const Segment& s, Vec2 p, double tolerance = 1e-9);

}  // namespace movr::geom
