// Angle arithmetic helpers.
//
// Beam-steering code constantly compares and wraps azimuths; getting the
// wrap-around wrong silently mis-aims a beam by 360/-360 degrees, so all
// wrapping lives here and is tested exhaustively.
#pragma once

#include <numbers>

namespace movr::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

constexpr double deg_to_rad(double degrees) { return degrees * kPi / 180.0; }
constexpr double rad_to_deg(double radians) { return radians * 180.0 / kPi; }

/// Wraps an angle to (-pi, pi].
double wrap_pi(double radians);

/// Wraps an angle to [0, 2*pi).
double wrap_two_pi(double radians);

/// Smallest absolute difference between two angles, in [0, pi].
double angular_distance(double a_radians, double b_radians);

/// Signed shortest rotation taking `from` to `to`, in (-pi, pi].
double angular_difference(double to_radians, double from_radians);

/// Linear interpolation along the shortest arc from `a` to `b`.
/// `t` = 0 gives `a`, `t` = 1 gives `b`.
double angular_lerp(double a_radians, double b_radians, double t);

}  // namespace movr::geom
