// Circles model blockers: a hand, a head, or a torso seen from above is,
// to a mmWave beam, a convex obstruction with a characteristic width.
// What matters for the channel model is the chord length a propagation leg
// cuts through the blocker, which sets the penetration loss.
#pragma once

#include <optional>

#include <geom/segment.hpp>
#include <geom/vec2.hpp>

namespace movr::geom {

struct Circle {
  Vec2 center;
  double radius{0.0};

  bool contains(Vec2 p) const { return distance(p, center) <= radius; }
};

/// Length of the chord that segment `s` cuts through `c` (0 if it misses).
/// Endpoints inside the circle clip the chord accordingly.
double chord_length(const Circle& c, const Segment& s);

/// True if the segment passes through (or touches) the circle.
bool intersects(const Circle& c, const Segment& s);

/// Closest approach distance between the segment and the circle's center.
/// Used to model near-grazing diffraction: a beam that misses a blocker by
/// millimetres still loses some power at mmWave.
double clearance(const Circle& c, const Segment& s);

}  // namespace movr::geom
