#include <geom/angle.hpp>

#include <cmath>

namespace movr::geom {

double wrap_two_pi(double radians) {
  double w = std::fmod(radians, kTwoPi);
  if (w < 0.0) {
    w += kTwoPi;
  }
  // fmod of a tiny negative value can round back up to exactly 2*pi.
  if (w >= kTwoPi) {
    w -= kTwoPi;
  }
  return w;
}

double wrap_pi(double radians) {
  const double w = wrap_two_pi(radians);
  return w > kPi ? w - kTwoPi : w;
}

double angular_distance(double a_radians, double b_radians) {
  return std::abs(wrap_pi(a_radians - b_radians));
}

double angular_difference(double to_radians, double from_radians) {
  return wrap_pi(to_radians - from_radians);
}

double angular_lerp(double a_radians, double b_radians, double t) {
  return wrap_pi(a_radians + angular_difference(b_radians, a_radians) * t);
}

}  // namespace movr::geom
