#include <geom/circle.hpp>

#include <algorithm>
#include <cmath>

namespace movr::geom {

namespace {

/// Intersection parameters of the infinite line through `s` with the circle,
/// as segment parameters (t0 <= t1); nullopt when the line misses entirely.
std::optional<std::pair<double, double>> line_circle_params(const Circle& c,
                                                            const Segment& s) {
  const Vec2 d = s.direction();
  const Vec2 f = s.a - c.center;
  const double a = d.norm_sq();
  if (a < 1e-24) {
    return std::nullopt;  // degenerate segment
  }
  const double b = 2.0 * f.dot(d);
  const double k = f.norm_sq() - c.radius * c.radius;
  const double disc = b * b - 4.0 * a * k;
  if (disc < 0.0) {
    return std::nullopt;
  }
  const double sq = std::sqrt(disc);
  return std::make_pair((-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a));
}

}  // namespace

double chord_length(const Circle& c, const Segment& s) {
  const auto params = line_circle_params(c, s);
  if (!params) {
    return 0.0;
  }
  const double t0 = std::clamp(params->first, 0.0, 1.0);
  const double t1 = std::clamp(params->second, 0.0, 1.0);
  if (t1 <= t0) {
    return 0.0;
  }
  return (t1 - t0) * s.length();
}

bool intersects(const Circle& c, const Segment& s) {
  return chord_length(c, s) > 0.0 || c.contains(s.a) || c.contains(s.b);
}

double clearance(const Circle& c, const Segment& s) {
  return distance_to(s, c.center);
}

}  // namespace movr::geom
