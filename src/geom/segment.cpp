#include <geom/segment.hpp>

#include <algorithm>
#include <cmath>

namespace movr::geom {

std::optional<Vec2> intersect(const Segment& s1, const Segment& s2) {
  const Vec2 d1 = s1.direction();
  const Vec2 d2 = s2.direction();
  const double denom = d1.cross(d2);
  if (std::abs(denom) < 1e-12) {
    return std::nullopt;  // parallel or collinear
  }
  const Vec2 delta = s2.a - s1.a;
  const double t = delta.cross(d2) / denom;
  const double u = delta.cross(d1) / denom;
  constexpr double kEps = 1e-12;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) {
    return std::nullopt;
  }
  return s1.at(std::clamp(t, 0.0, 1.0));
}

double distance_to(const Segment& s, Vec2 p) {
  const Vec2 d = s.direction();
  const double len_sq = d.norm_sq();
  if (len_sq < 1e-24) {
    return distance(p, s.a);  // degenerate segment
  }
  const double t = std::clamp((p - s.a).dot(d) / len_sq, 0.0, 1.0);
  return distance(p, s.at(t));
}

Vec2 mirror_across(const Segment& s, Vec2 p) {
  const Vec2 d = s.direction().normalized();
  const Vec2 rel = p - s.a;
  const Vec2 proj = d * rel.dot(d);
  const Vec2 perp = rel - proj;
  return p - perp * 2.0;
}

bool contains(const Segment& s, Vec2 p, double tolerance) {
  return distance_to(s, p) <= tolerance;
}

}  // namespace movr::geom
