// 2-D vector primitives used throughout the room/ray geometry.
//
// All of the paper's geometry (AP, reflector, headset, blockers, walls) lives
// in the horizontal plane: every angle in the paper (angle of incidence,
// angle of reflection, beam-steering angles in Figs. 7 and 8) is an azimuth.
// A plain 2-D vector type therefore carries the whole spatial model.
#pragma once

#include <cmath>
#include <ostream>

namespace movr::geom {

/// A point or displacement in the room plane, in metres.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x{x_}, y{y_} {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// Signed magnitude of the 2-D cross product (z-component of a 3-D cross).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  constexpr double norm_sq() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Unit vector in the same direction. Undefined for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return {x / n, y / n};
  }

  /// Counter-clockwise rotation by `radians`.
  Vec2 rotated(double radians) const {
    const double c = std::cos(radians);
    const double s = std::sin(radians);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular vector (90 degrees counter-clockwise).
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Azimuth of this vector in radians, in (-pi, pi], measured CCW from +x.
  double heading() const { return std::atan2(y, x); }

  /// Unit vector with the given heading (radians CCW from +x).
  static Vec2 from_heading(double radians) {
    return {std::cos(radians), std::sin(radians)};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace movr::geom
